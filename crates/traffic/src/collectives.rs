//! Collective-communication workloads (the paper's Motivation 2 traffic).
//!
//! §1 motivates hetero-IF with the coexistence of "frequent on-chip
//! communications such as the handshake, synchronization, and coherence
//! protocols" (small, latency-critical) and "heavy network traffic such as
//! the all-reduce operation of large amounts of data" (bulk,
//! throughput-critical). This module synthesizes the classic collectives
//! as schedulable traces so scheduling policies can be evaluated on the
//! traffic the paper talks about:
//!
//! * [`ring_all_reduce`] — the bandwidth-optimal 2(N−1)-step ring
//!   algorithm: N−1 reduce-scatter steps plus N−1 all-gather steps, each
//!   rank exchanging `chunk` flits with its ring successor per step;
//! * [`tree_all_reduce`] — the latency-optimal binomial tree (reduce to
//!   rank 0, then broadcast), 2·log₂N phases of small messages;
//! * [`all_to_all`] — the personalized exchange (each rank sends a
//!   distinct chunk to every other rank), scheduled in N−1 shifted rounds;
//! * [`barrier`] — a dissemination barrier: log₂N rounds of 1-flit
//!   high-priority notifications.
//!
//! Bulk payloads are [`OrderClass::Unordered`] (eligible for the serial
//! PHY / bypass); control messages are in-order and high-priority, so
//! application-aware scheduling (§5.3.2) has something to work with.

use crate::trace::{PacketRequest, TraceWorkload};
use chiplet_noc::{OrderClass, Priority};
use chiplet_topo::NodeId;
use simkit::Cycle;

/// Flits per packet for bulk chunks (Table 2's packet size).
const BULK_PKT: u16 = 16;

pub(crate) fn bulk(src: NodeId, dst: NodeId, len: u16) -> PacketRequest {
    PacketRequest {
        src,
        dst,
        len,
        class: OrderClass::Unordered,
        priority: Priority::Normal,
        tag: 0,
    }
}

pub(crate) fn control(src: NodeId, dst: NodeId) -> PacketRequest {
    PacketRequest {
        src,
        dst,
        len: 1,
        class: OrderClass::InOrder,
        priority: Priority::High,
        tag: 0,
    }
}

/// The communication edges (as rank indices) of one ring step: every
/// rank sends to its ring successor. The same each step; exposed so
/// phase-graph builders schedule exactly the edges the flat trace
/// builders emit, in the same order.
pub(crate) fn ring_step_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// The edges of binomial-tree round `k`: ranks with bit `k` set (and all
/// lower bits clear) pair with `rank - 2^k`. `broadcast` reverses the
/// direction (parent → child).
pub(crate) fn tree_round_edges(n: usize, k: usize, broadcast: bool) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for i in 0..n {
        if i & (1 << k) != 0 && i & ((1 << k) - 1) == 0 {
            let partner = i - (1 << k);
            if broadcast {
                edges.push((partner, i));
            } else {
                edges.push((i, partner));
            }
        }
    }
    edges
}

/// The edges of all-to-all round `s` (1 ≤ s < n): rank `i` sends to rank
/// `(i + s) mod n` — the classic congestion-avoiding shifted schedule.
pub(crate) fn all_to_all_round_edges(n: usize, s: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + s) % n)).collect()
}

/// The edges of dissemination-barrier round `k`: rank `i` notifies rank
/// `(i + 2^k) mod n`.
pub(crate) fn barrier_round_edges(n: usize, k: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + (1 << k)) % n)).collect()
}

/// ⌈log₂ n⌉ — the round count of the tree and dissemination collectives.
pub(crate) fn ceil_log2(n: usize) -> usize {
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Emits a bulk transfer of `flits` flits as 16-flit packets (plus a
/// remainder packet).
pub(crate) fn push_bulk(
    events: &mut Vec<(Cycle, PacketRequest)>,
    at: Cycle,
    src: NodeId,
    dst: NodeId,
    flits: u32,
) {
    let mut left = flits;
    let mut t = at;
    while left > 0 {
        let len = left.min(BULK_PKT as u32) as u16;
        events.push((t, bulk(src, dst, len)));
        left -= len as u32;
        t += 1;
    }
}

/// Ring all-reduce over `ranks`: 2(N−1) steps spaced `step_gap` cycles,
/// each rank sending `chunk_flits` to its ring successor per step.
///
/// # Panics
///
/// Panics if fewer than 2 ranks or `chunk_flits == 0`.
pub fn ring_all_reduce(
    ranks: &[NodeId],
    chunk_flits: u32,
    step_gap: Cycle,
    start: Cycle,
) -> TraceWorkload {
    assert!(ranks.len() >= 2, "all-reduce needs at least two ranks");
    assert!(chunk_flits > 0, "empty chunks");
    let n = ranks.len();
    let mut events = Vec::new();
    for step in 0..(2 * (n - 1)) {
        let t = start + step as Cycle * step_gap;
        for (i, j) in ring_step_edges(n) {
            push_bulk(&mut events, t, ranks[i], ranks[j], chunk_flits);
        }
    }
    TraceWorkload::new(events)
}

/// Binomial-tree all-reduce over `ranks`: log₂N reduce rounds toward
/// rank 0 followed by log₂N broadcast rounds, small `msg_flits` messages.
///
/// # Panics
///
/// Panics if fewer than 2 ranks or `msg_flits == 0`.
pub fn tree_all_reduce(
    ranks: &[NodeId],
    msg_flits: u16,
    round_gap: Cycle,
    start: Cycle,
) -> TraceWorkload {
    assert!(ranks.len() >= 2, "all-reduce needs at least two ranks");
    assert!(msg_flits > 0, "empty messages");
    let n = ranks.len();
    let rounds = ceil_log2(n);
    let mut events = Vec::new();
    // Reduce: in round k, ranks with bit k set send to rank - 2^k.
    for k in 0..rounds {
        let t = start + k as Cycle * round_gap;
        for (i, j) in tree_round_edges(n, k, false) {
            events.push((t, bulk(ranks[i], ranks[j], msg_flits)));
        }
    }
    // Broadcast: mirror order.
    for k in (0..rounds).rev() {
        let t = start + (2 * rounds - 1 - k) as Cycle * round_gap;
        for (i, j) in tree_round_edges(n, k, true) {
            events.push((t, bulk(ranks[i], ranks[j], msg_flits)));
        }
    }
    TraceWorkload::new(events)
}

/// Personalized all-to-all over `ranks` in N−1 shifted rounds: in round
/// `s`, rank `i` sends `chunk_flits` to rank `i ⊕shift s` (the classic
/// congestion-avoiding schedule).
///
/// # Panics
///
/// Panics if fewer than 2 ranks or `chunk_flits == 0`.
pub fn all_to_all(
    ranks: &[NodeId],
    chunk_flits: u32,
    round_gap: Cycle,
    start: Cycle,
) -> TraceWorkload {
    assert!(ranks.len() >= 2, "all-to-all needs at least two ranks");
    assert!(chunk_flits > 0, "empty chunks");
    let n = ranks.len();
    let mut events = Vec::new();
    for s in 1..n {
        let t = start + (s - 1) as Cycle * round_gap;
        for (i, j) in all_to_all_round_edges(n, s) {
            push_bulk(&mut events, t, ranks[i], ranks[j], chunk_flits);
        }
    }
    TraceWorkload::new(events)
}

/// Dissemination barrier over `ranks`: ⌈log₂N⌉ rounds; in round `k` rank
/// `i` notifies rank `(i + 2^k) mod N` with a 1-flit high-priority
/// message.
///
/// # Panics
///
/// Panics if fewer than 2 ranks.
pub fn barrier(ranks: &[NodeId], round_gap: Cycle, start: Cycle) -> TraceWorkload {
    assert!(ranks.len() >= 2, "a barrier needs at least two ranks");
    let n = ranks.len();
    let rounds = ceil_log2(n);
    let mut events = Vec::new();
    for k in 0..rounds {
        let t = start + k as Cycle * round_gap;
        for (i, j) in barrier_round_edges(n, k) {
            events.push((t, control(ranks[i], ranks[j])));
        }
    }
    TraceWorkload::new(events)
}

/// The paper's Motivation-2 mix: a large ring all-reduce running
/// concurrently with periodic barriers (synchronization) — bulk
/// throughput traffic plus latency-critical control traffic on the same
/// network at the same time.
pub fn mixed_allreduce_with_barriers(
    ranks: &[NodeId],
    chunk_flits: u32,
    step_gap: Cycle,
    barrier_period: Cycle,
    duration: Cycle,
) -> TraceWorkload {
    let mut events: Vec<(Cycle, PacketRequest)> = Vec::new();
    let mut t = 0;
    while t < duration {
        events.extend_from_slice(ring_all_reduce(ranks, chunk_flits, step_gap, t).events());
        t += 2 * (ranks.len() as Cycle - 1) * step_gap + step_gap;
    }
    let mut b = 0;
    while b < duration {
        events.extend_from_slice(barrier(ranks, 4, b).events());
        b += barrier_period;
    }
    TraceWorkload::new(
        events
            .into_iter()
            .filter(|&(at, _)| at < duration)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn ring_all_reduce_volume_is_2n_minus_1_chunks_per_rank() {
        let n = 8u32;
        let chunk = 64u32;
        let t = ring_all_reduce(&ranks(n), chunk, 100, 0);
        let total_flits: u64 = t.events().iter().map(|&(_, r)| r.len as u64).sum();
        assert_eq!(total_flits, (2 * (n - 1) * n * chunk) as u64);
        // Every packet goes to the ring successor.
        for &(_, r) in t.events() {
            assert_eq!(r.dst.0, (r.src.0 + 1) % n);
            assert_eq!(r.class, OrderClass::Unordered);
        }
    }

    #[test]
    fn tree_all_reduce_has_n_minus_1_messages_each_way() {
        let n = 16u32;
        let t = tree_all_reduce(&ranks(n), 9, 50, 0);
        // Binomial tree: n-1 reduce edges + n-1 broadcast edges.
        assert_eq!(t.len(), 2 * (n as usize - 1));
        // Reduce messages precede broadcast messages.
        let mid = t.events()[n as usize - 2].0;
        let first_bcast = t.events()[n as usize - 1].0;
        assert!(first_bcast >= mid);
    }

    #[test]
    fn all_to_all_covers_every_ordered_pair_once() {
        let n = 6u32;
        let t = all_to_all(&ranks(n), 16, 10, 0);
        let mut pairs = std::collections::HashSet::new();
        for &(_, r) in t.events() {
            assert_ne!(r.src, r.dst);
            assert!(pairs.insert((r.src, r.dst)), "duplicate pair");
        }
        assert_eq!(pairs.len(), (n * (n - 1)) as usize);
    }

    #[test]
    fn barrier_messages_are_small_and_urgent() {
        let t = barrier(&ranks(8), 4, 100);
        assert_eq!(t.len(), 3 * 8); // log2(8) rounds * 8 ranks
        for &(at, r) in t.events() {
            assert_eq!(r.len, 1);
            assert_eq!(r.priority, Priority::High);
            assert!(at >= 100);
        }
    }

    #[test]
    fn mixed_trace_interleaves_both_kinds() {
        let t = mixed_allreduce_with_barriers(&ranks(4), 32, 20, 50, 500);
        let bulk = t.events().iter().filter(|&&(_, r)| r.len > 1).count();
        let ctrl = t
            .events()
            .iter()
            .filter(|&&(_, r)| r.priority == Priority::High)
            .count();
        assert!(bulk > 0 && ctrl > 0);
        assert!(t.horizon() < 500);
    }

    #[test]
    fn large_chunks_split_into_table2_packets() {
        let t = ring_all_reduce(&ranks(2), 40, 100, 0);
        let lens: Vec<u16> = t.events().iter().map(|&(_, r)| r.len).collect();
        assert!(lens.iter().all(|&l| l <= BULK_PKT));
        assert!(lens.contains(&8)); // 40 = 16 + 16 + 8
    }
}

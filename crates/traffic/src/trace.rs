//! The workload interface and replayable trace container.

use chiplet_noc::{OrderClass, Priority};
use chiplet_topo::NodeId;
use simkit::Cycle;

/// A packet the workload wants injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRequest {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits.
    pub len: u16,
    /// Ordering class.
    pub class: OrderClass,
    /// Scheduling priority.
    pub priority: Priority,
    /// Workload phase tag (0 = untagged). Phase-graph workloads stamp
    /// their packets with the emitting phase's tag so the engine can
    /// report per-phase delivery counts back through
    /// [`Workload::observe`] and attribute per-phase statistics.
    pub tag: u16,
}

impl PacketRequest {
    /// A normal in-order packet.
    pub fn new(src: NodeId, dst: NodeId, len: u16) -> Self {
        Self {
            src,
            dst,
            len,
            class: OrderClass::InOrder,
            priority: Priority::Normal,
            tag: 0,
        }
    }

    /// Stamps the request with a workload phase tag.
    pub fn with_tag(mut self, tag: u16) -> Self {
        self.tag = tag;
        self
    }
}

/// A source of traffic, polled once per simulated cycle.
pub trait Workload: std::fmt::Debug {
    /// Appends the packets created at cycle `now`. Must be called with
    /// non-decreasing `now`.
    fn poll(&mut self, now: Cycle, out: &mut Vec<PacketRequest>);

    /// Whether the workload has no further packets to offer (always `false`
    /// for open-loop synthetic traffic).
    fn done(&self) -> bool {
        false
    }

    /// Eject feedback from the engine, delivered once per cycle *before*
    /// [`Workload::poll`]: `delivered_by_tag[tag]` is the cumulative
    /// number of packets with that [`PacketRequest::tag`] whose tail flit
    /// has ejected (index 0 is the untagged slot and stays 0 — untagged
    /// deliveries are not tracked per tag). The slice only grows as
    /// higher tags are first delivered, so it may be shorter than the
    /// highest tag a workload has emitted. Open-loop workloads
    /// ignore this; dependency-driven workloads use it to release
    /// successor phases strictly after their predecessors' packets have
    /// all left the network.
    fn observe(&mut self, _now: Cycle, _delivered_by_tag: &[u64]) {}
}

/// A pre-materialized, time-sorted trace.
///
/// # Examples
///
/// ```
/// use chiplet_traffic::{PacketRequest, TraceWorkload, Workload};
/// use chiplet_topo::NodeId;
///
/// let mut t = TraceWorkload::new(vec![
///     (0, PacketRequest::new(NodeId(0), NodeId(1), 1)),
///     (5, PacketRequest::new(NodeId(1), NodeId(0), 9)),
/// ]);
/// let mut out = Vec::new();
/// t.poll(0, &mut out);
/// assert_eq!(out.len(), 1);
/// t.poll(4, &mut out);
/// assert_eq!(out.len(), 1);
/// t.poll(5, &mut out);
/// assert_eq!(out.len(), 2);
/// assert!(t.done());
/// ```
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    events: Vec<(Cycle, PacketRequest)>,
    next: usize,
}

impl TraceWorkload {
    /// Creates a trace from `(time, packet)` events; sorts them by time.
    pub fn new(mut events: Vec<(Cycle, PacketRequest)>) -> Self {
        events.sort_by_key(|&(t, _)| t);
        Self { events, next: 0 }
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last event, or 0 for an empty trace.
    pub fn horizon(&self) -> Cycle {
        self.events.last().map_or(0, |&(t, _)| t)
    }

    /// Rescales event times by `factor` (e.g. 0.5 halves all gaps — the
    /// "injection scale" axis of Figs. 13/15).
    ///
    /// The scaling is computed in 32.32 fixed point (`factor` is snapped
    /// to the nearest 1/2³² before applying), so the mapping is a single
    /// exact integer multiply per event: monotone in `t`, free of the
    /// accumulated f64 drift that used to let near-tied events land in
    /// different orders on different platforms, and exact for cycle
    /// values beyond 2⁵³ where `t as f64` itself loses precision. Events
    /// that collapse onto the same cycle keep their relative order, so a
    /// rescaled trace survives a CSV save/load round trip bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn rescaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "time scale factor must be positive");
        // Snap the factor to 32.32 fixed point once; each event time is
        // then an exact u128 multiply with round-half-up.
        let scale = (factor * (1u64 << 32) as f64).round() as u128;
        for (t, _) in &mut self.events {
            let scaled = (*t as u128 * scale + (1u128 << 31)) >> 32;
            *t = scaled.min(Cycle::MAX as u128) as Cycle;
        }
        // A monotone mapping of a sorted list stays sorted; the stable
        // sort is a no-op that only documents the invariant.
        self.events.sort_by_key(|&(t, _)| t);
        self.next = 0;
        self
    }

    /// Iterates over all events (for analysis/tests).
    pub fn events(&self) -> &[(Cycle, PacketRequest)] {
        &self.events
    }

    /// Serializes the trace as CSV (`cycle,src,dst,len,class,priority`) —
    /// a portable interchange format for captured or synthesized traces.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,src,dst,len,class,priority\n");
        for &(t, r) in &self.events {
            out.push_str(&format!(
                "{t},{},{},{},{},{}\n",
                r.src.0,
                r.dst.0,
                r.len,
                match r.class {
                    OrderClass::InOrder => "inorder",
                    OrderClass::Unordered => "unordered",
                },
                match r.priority {
                    Priority::Normal => "normal",
                    Priority::High => "high",
                },
            ));
        }
        out
    }

    /// Parses a trace from the CSV format of [`TraceWorkload::to_csv`].
    ///
    /// Rows may arrive unsorted (they are stably sorted by cycle), with
    /// one exception: a file that is *both* out of order *and* contains a
    /// duplicated cycle value is rejected. Equal-cycle events inject in
    /// row order, so in a sorted file (what [`TraceWorkload::to_csv`]
    /// writes) that order is the producer's intent — but once rows are
    /// shuffled, the relative order of equal-cycle events is a
    /// file-position accident and silently sorting would pick an
    /// arbitrary injection order. The error names the first out-of-order
    /// line so the producer can re-sort deliberately.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] naming the offending line when a row is
    /// malformed or the ordering is ambiguous as described above.
    pub fn from_csv(s: &str) -> Result<Self, ParseTraceError> {
        let mut events = Vec::new();
        let mut cycles_seen: std::collections::HashSet<Cycle> = std::collections::HashSet::new();
        let mut prev_cycle: Option<Cycle> = None;
        let mut out_of_order: Option<(usize, Cycle)> = None; // (line, cycle)
        let mut duplicate: Option<Cycle> = None;
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.starts_with("cycle")) {
                continue;
            }
            let err = |what: &str| ParseTraceError {
                line: lineno + 1,
                reason: what.to_string(),
            };
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 6 {
                return Err(err("expected 6 fields"));
            }
            let t: Cycle = f[0].parse().map_err(|_| err("bad cycle"))?;
            let src = NodeId(f[1].parse().map_err(|_| err("bad src"))?);
            let dst = NodeId(f[2].parse().map_err(|_| err("bad dst"))?);
            let len: u16 = f[3].parse().map_err(|_| err("bad len"))?;
            if len == 0 {
                return Err(err("zero-length packet"));
            }
            let class = match f[4] {
                "inorder" => OrderClass::InOrder,
                "unordered" => OrderClass::Unordered,
                _ => return Err(err("bad class")),
            };
            let priority = match f[5] {
                "normal" => Priority::Normal,
                "high" => Priority::High,
                _ => return Err(err("bad priority")),
            };
            if !cycles_seen.insert(t) && duplicate.is_none() {
                duplicate = Some(t);
            }
            if prev_cycle.is_some_and(|p| t < p) && out_of_order.is_none() {
                out_of_order = Some((lineno + 1, t));
            }
            prev_cycle = Some(t);
            events.push((
                t,
                PacketRequest {
                    src,
                    dst,
                    len,
                    class,
                    priority,
                    tag: 0,
                },
            ));
        }
        if let (Some((line, t)), Some(dup)) = (out_of_order, duplicate) {
            return Err(ParseTraceError {
                line,
                reason: format!(
                    "cycle {t} is out of order and the trace duplicates cycle {dup}: \
                     the injection order of equal-cycle rows is ambiguous; sort the trace"
                ),
            });
        }
        Ok(Self::new(events))
    }

    /// Writes the trace to a CSV file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Reads a trace from a CSV file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files and a parse error
    /// (wrapped as `InvalidData`) for malformed content.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_csv(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// A malformed trace row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

impl Workload for TraceWorkload {
    fn poll(&mut self, now: Cycle, out: &mut Vec<PacketRequest>) {
        while let Some(&(t, req)) = self.events.get(self.next) {
            if t > now {
                break;
            }
            out.push(req);
            self.next += 1;
        }
    }

    fn done(&self) -> bool {
        self.next >= self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsorted_events_get_sorted() {
        let t = TraceWorkload::new(vec![
            (9, PacketRequest::new(NodeId(0), NodeId(1), 1)),
            (3, PacketRequest::new(NodeId(1), NodeId(2), 1)),
        ]);
        assert_eq!(t.events()[0].0, 3);
        assert_eq!(t.horizon(), 9);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rescale_halves_times() {
        let t = TraceWorkload::new(vec![
            (10, PacketRequest::new(NodeId(0), NodeId(1), 1)),
            (20, PacketRequest::new(NodeId(0), NodeId(1), 1)),
        ])
        .rescaled(0.5);
        assert_eq!(t.events()[0].0, 5);
        assert_eq!(t.events()[1].0, 10);
    }

    #[test]
    fn rescale_then_csv_roundtrip_reproduces_event_cycles() {
        // The old f64 multiply accumulated drift that could land
        // near-tied events on different cycles (or in different orders)
        // per platform; the fixed-point mapping is exact, monotone and
        // survives the save/load round trip bit-identically.
        let events: Vec<_> = (0..200u64)
            .map(|i| (i * 7 + 3, PacketRequest::new(NodeId(0), NodeId(1), 1)))
            .collect();
        let t = TraceWorkload::new(events).rescaled(1.0 / 3.0);
        for w in t.events().windows(2) {
            assert!(w[0].0 <= w[1].0, "rescale must stay monotone");
        }
        let back = TraceWorkload::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t.events(), back.events());
    }

    #[test]
    fn rescale_power_of_two_factors_are_exact_beyond_f64_precision() {
        // 2^60 is not representable exactly once multiplied by an f64
        // factor in the naive scheme; the 32.32 fixed-point path is.
        let big = 1u64 << 60;
        let t = TraceWorkload::new(vec![
            (big, PacketRequest::new(NodeId(0), NodeId(1), 1)),
            (big + 4, PacketRequest::new(NodeId(1), NodeId(0), 1)),
        ])
        .rescaled(0.25);
        assert_eq!(t.events()[0].0, big >> 2);
        assert_eq!(t.events()[1].0, (big + 4) >> 2);
    }

    #[test]
    fn csv_rejects_out_of_order_rows_with_duplicate_cycles() {
        let csv = "cycle,src,dst,len,class,priority\n\
                   5,0,1,1,inorder,normal\n\
                   3,1,2,1,inorder,normal\n\
                   5,2,3,1,inorder,normal\n";
        let e = TraceWorkload::from_csv(csv).unwrap_err();
        assert_eq!(e.line, 3, "error names the first out-of-order line");
        assert!(e.reason.contains("ambiguous"), "{e}");
    }

    #[test]
    fn csv_accepts_unsorted_unique_and_sorted_duplicate_cycles() {
        // Unsorted without duplicates: the sort is unambiguous.
        let t =
            TraceWorkload::from_csv("5,0,1,1,inorder,normal\n3,1,2,1,inorder,normal\n").unwrap();
        assert_eq!(t.events()[0].0, 3);
        // Sorted with duplicates: row order is the producer's intent.
        let t = TraceWorkload::from_csv(
            "3,0,1,1,inorder,normal\n3,1,2,1,inorder,normal\n5,2,3,1,inorder,normal\n",
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].1.src, NodeId(0));
        assert_eq!(t.events()[1].1.src, NodeId(1));
    }

    #[test]
    fn csv_roundtrip_preserves_everything() {
        let t = TraceWorkload::new(vec![
            (
                3,
                PacketRequest {
                    src: NodeId(1),
                    dst: NodeId(2),
                    len: 16,
                    class: OrderClass::Unordered,
                    priority: Priority::High,
                    tag: 0,
                },
            ),
            (7, PacketRequest::new(NodeId(4), NodeId(5), 1)),
        ]);
        let back = TraceWorkload::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t.events(), back.events());
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        for (bad, reason) in [
            ("1,2,3", "expected 6 fields"),
            ("x,1,2,3,inorder,normal", "bad cycle"),
            ("1,1,2,0,inorder,normal", "zero-length packet"),
            ("1,1,2,3,sideways,normal", "bad class"),
            ("1,1,2,3,inorder,urgent", "bad priority"),
        ] {
            let e = TraceWorkload::from_csv(bad).unwrap_err();
            assert!(e.reason.contains(reason), "{bad} -> {e}");
            assert!(e.to_string().contains("trace line"));
        }
    }

    #[test]
    fn csv_skips_header_and_blank_lines() {
        let t =
            TraceWorkload::from_csv("cycle,src,dst,len,class,priority\n\n5,0,1,2,inorder,normal\n")
                .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].0, 5);
    }

    #[test]
    fn poll_is_cumulative_and_done_flags() {
        let mut t = TraceWorkload::new(vec![
            (1, PacketRequest::new(NodeId(0), NodeId(1), 1)),
            (1, PacketRequest::new(NodeId(2), NodeId(3), 1)),
        ]);
        assert!(!t.done());
        let mut out = Vec::new();
        t.poll(1, &mut out);
        assert_eq!(out.len(), 2);
        assert!(t.done());
    }
}

//! The six synthetic traffic patterns of §7.2.
//!
//! Bit permutations are defined on `b = ⌊log₂ N⌋` address bits. For
//! non-power-of-two systems (the paper's 1296- and 3136-node systems) the
//! permutation applies to ranks below `2^b`; the remaining ranks mirror-map
//! (`N − 1 − r`), preserving the pattern's structure on the bulk of the
//! nodes (see DESIGN.md, substitutions).

use simkit::SimRng;

/// A synthetic traffic pattern mapping source ranks to destination ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniform random destinations.
    Uniform,
    /// Communication restricted to a random subset of the nodes (the paper
    /// uses 10%): sources in the subset pick uniform destinations in it.
    UniformHotspot,
    /// `d_i = s_{(i-1) mod b}` — rotate address bits left by one.
    BitShuffle,
    /// `d_i = ¬s_i` — complement every address bit.
    BitComplement,
    /// `d_i = s_{(i+b/2) mod b}` — rotate address bits by half the width.
    BitTranspose,
    /// `d_i = s_{b-i-1}` — reverse the address bits.
    BitReverse,
}

impl TrafficPattern {
    /// All six patterns in the paper's order.
    pub const ALL: [TrafficPattern; 6] = [
        TrafficPattern::Uniform,
        TrafficPattern::UniformHotspot,
        TrafficPattern::BitShuffle,
        TrafficPattern::BitComplement,
        TrafficPattern::BitTranspose,
        TrafficPattern::BitReverse,
    ];

    /// Whether the pattern is a deterministic permutation (no RNG needed
    /// for destinations).
    pub fn is_permutation(&self) -> bool {
        !matches!(
            self,
            TrafficPattern::Uniform | TrafficPattern::UniformHotspot
        )
    }

    /// Destination rank for a packet from `src` among `n` ranks.
    ///
    /// Returns `None` when the pattern maps `src` to itself (no packet is
    /// generated), or — for [`TrafficPattern::UniformHotspot`] — when `src`
    /// is outside the hot subset (hotspot membership is derived
    /// deterministically from the rank, so all nodes agree on the subset).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `src >= n`.
    pub fn dest(&self, src: u64, n: u64, rng: &mut SimRng) -> Option<u64> {
        assert!(n >= 2, "patterns need at least two ranks");
        assert!(src < n, "source rank out of range");
        let b = 63 - n.leading_zeros() as u64; // floor(log2 n)
        let m = 1u64 << b;
        let d = match self {
            TrafficPattern::Uniform => {
                let mut d = rng.below(n);
                // Re-draw once to reduce self-traffic; give up after that.
                if d == src {
                    d = rng.below(n);
                }
                d
            }
            TrafficPattern::UniformHotspot => {
                if !Self::in_hotspot(src, n) {
                    return None;
                }
                // Draw hot destinations by rejection (subset is 10%).
                for _ in 0..64 {
                    let d = rng.below(n);
                    if d != src && Self::in_hotspot(d, n) {
                        return Some(d);
                    }
                }
                return None;
            }
            TrafficPattern::BitShuffle => {
                Self::permute(src, m, |s| ((s << 1) | (s >> (b - 1))) & (m - 1))
            }
            TrafficPattern::BitComplement => Self::permute(src, m, |s| !s & (m - 1)),
            TrafficPattern::BitTranspose => Self::permute(src, m, |s| {
                let h = b / 2;
                ((s << h) | (s >> (b - h))) & (m - 1)
            }),
            TrafficPattern::BitReverse => Self::permute(src, m, |s| {
                let mut d = 0u64;
                for i in 0..b {
                    if s & (1 << i) != 0 {
                        d |= 1 << (b - 1 - i);
                    }
                }
                d
            }),
        };
        (d != src && d < n).then_some(d)
    }

    /// Writes the analytic (RNG-free) destination-weight row of `src`:
    /// after the call, `out[d]` is the probability that one injection
    /// opportunity at `src` produces a packet for `d`. Rows sum to at most
    /// 1; the deficit is the chance the opportunity is wasted (a uniform
    /// draw that lands on `src` twice, a cold hotspot source, a
    /// permutation fixed point). This is the steady-state demand model the
    /// estimation subsystem integrates over — it matches what
    /// [`TrafficPattern::dest`] converges to over many draws.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `src >= n`, or `out.len() != n`.
    pub fn dest_weights(&self, src: u64, n: u64, out: &mut [f64]) {
        assert!(n >= 2, "patterns need at least two ranks");
        assert!(src < n, "source rank out of range");
        assert_eq!(out.len(), n as usize, "weight row must have n entries");
        out.fill(0.0);
        match self {
            TrafficPattern::Uniform => {
                // First draw uniform; a self-hit redraws once, so every
                // d != src ends with P = 1/n + (1/n)·(1/n).
                let w = (n as f64 + 1.0) / (n as f64 * n as f64);
                for d in 0..n {
                    if d != src {
                        out[d as usize] = w;
                    }
                }
            }
            TrafficPattern::UniformHotspot => {
                if !Self::in_hotspot(src, n) {
                    return;
                }
                let hot: Vec<u64> = (0..n)
                    .filter(|&d| d != src && Self::in_hotspot(d, n))
                    .collect();
                if hot.is_empty() {
                    return;
                }
                // Rejection sampling converges to uniform over the hot
                // peers (the 64-draw cutoff fails with negligible odds).
                let w = 1.0 / hot.len() as f64;
                for d in hot {
                    out[d as usize] = w;
                }
            }
            _ => {
                // Deterministic permutations: one destination, weight 1,
                // unless the pattern maps src to itself or out of range.
                let mut rng = SimRng::seed(0); // never consulted
                if let Some(d) = self.dest(src, n, &mut rng) {
                    out[d as usize] = 1.0;
                }
            }
        }
    }

    /// Whether `rank` belongs to the deterministic ~10 % hotspot subset of
    /// [`TrafficPattern::UniformHotspot`] (public so analytic demand
    /// models agree with the workload about the hot set).
    pub fn is_hot(rank: u64, n: u64) -> bool {
        Self::in_hotspot(rank, n)
    }

    /// Deterministic 10% hotspot membership: a rank hash spreads the hot
    /// set over the machine.
    fn in_hotspot(rank: u64, _n: u64) -> bool {
        let h = rank
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (h >> 32).is_multiple_of(10)
    }

    fn permute<F: Fn(u64) -> u64>(src: u64, m: u64, f: F) -> u64 {
        if src < m {
            f(src)
        } else {
            // Mirror-map the off-power-of-two tail.
            m + (m - 1 - (src - m)).min(m - 1) // stays in [m, 2m) range cap
        }
    }
}

impl std::fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::UniformHotspot => "uniform-hotspot",
            TrafficPattern::BitShuffle => "bit-shuffle",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::BitTranspose => "bit-transpose",
            TrafficPattern::BitReverse => "bit-reverse",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_are_bijective_on_power_of_two() {
        let n = 64u64;
        let mut rng = SimRng::seed(1);
        for p in [
            TrafficPattern::BitShuffle,
            TrafficPattern::BitComplement,
            TrafficPattern::BitTranspose,
            TrafficPattern::BitReverse,
        ] {
            let mut seen = std::collections::HashSet::new();
            for s in 0..n {
                if let Some(d) = p.dest(s, n, &mut rng) {
                    assert!(d < n);
                    assert!(seen.insert(d), "{p}: duplicate destination {d}");
                }
            }
            // Permutations minus fixed points.
            assert!(seen.len() >= (n as usize) - 8, "{p}: too many fixed points");
        }
    }

    #[test]
    fn complement_pairs_opposite() {
        let mut rng = SimRng::seed(2);
        let d = TrafficPattern::BitComplement.dest(0, 64, &mut rng).unwrap();
        assert_eq!(d, 63);
        let d = TrafficPattern::BitComplement
            .dest(21, 64, &mut rng)
            .unwrap();
        assert_eq!(d, 42);
    }

    #[test]
    fn shuffle_rotates_left() {
        let mut rng = SimRng::seed(3);
        // b = 6, src = 0b000001 → 0b000010
        assert_eq!(TrafficPattern::BitShuffle.dest(1, 64, &mut rng), Some(2));
        // msb wraps: 0b100000 → 0b000001
        assert_eq!(TrafficPattern::BitShuffle.dest(32, 64, &mut rng), Some(1));
    }

    #[test]
    fn reverse_reverses() {
        let mut rng = SimRng::seed(4);
        // b = 6: 0b000011 → 0b110000
        assert_eq!(TrafficPattern::BitReverse.dest(3, 64, &mut rng), Some(48));
    }

    #[test]
    fn uniform_avoids_self_mostly() {
        let mut rng = SimRng::seed(5);
        let mut selfs = 0;
        for _ in 0..2000 {
            if TrafficPattern::Uniform.dest(7, 64, &mut rng) == Some(7) {
                selfs += 1;
            }
        }
        assert!(selfs < 10);
    }

    #[test]
    fn hotspot_is_sparse_and_consistent() {
        let n = 1000u64;
        let hot: Vec<u64> = (0..n)
            .filter(|&r| TrafficPattern::in_hotspot(r, n))
            .collect();
        // Roughly 10% of nodes.
        assert!((50..200).contains(&(hot.len() as u64)), "{}", hot.len());
        let mut rng = SimRng::seed(6);
        // Non-hot sources produce no traffic; hot sources target hot nodes.
        for s in 0..n {
            if let Some(d) = TrafficPattern::UniformHotspot.dest(s, n, &mut rng) {
                assert!(TrafficPattern::in_hotspot(s, n));
                assert!(TrafficPattern::in_hotspot(d, n));
            }
        }
    }

    #[test]
    fn dest_weights_match_empirical_uniform() {
        let n = 16u64;
        let mut row = vec![0.0; n as usize];
        TrafficPattern::Uniform.dest_weights(3, n, &mut row);
        assert_eq!(row[3], 0.0);
        let total: f64 = row.iter().sum();
        // Row sums to 1 − P(two self draws) = 1 − 1/n².
        assert!((total - (1.0 - 1.0 / (n as f64 * n as f64))).abs() < 1e-12);
        // Empirically: many dest() draws approach the analytic row.
        let mut rng = SimRng::seed(9);
        let mut counts = vec![0u32; n as usize];
        let draws = 200_000;
        for _ in 0..draws {
            if let Some(d) = TrafficPattern::Uniform.dest(3, n, &mut rng) {
                counts[d as usize] += 1;
            }
        }
        for d in 0..n as usize {
            let emp = counts[d] as f64 / draws as f64;
            assert!((emp - row[d]).abs() < 0.01, "d={d}: {emp} vs {}", row[d]);
        }
    }

    #[test]
    fn dest_weights_match_permutations_and_hotspot() {
        let n = 64u64;
        let mut rng = SimRng::seed(10);
        let mut row = vec![0.0; n as usize];
        for p in [
            TrafficPattern::BitShuffle,
            TrafficPattern::BitComplement,
            TrafficPattern::BitTranspose,
            TrafficPattern::BitReverse,
        ] {
            for s in 0..n {
                p.dest_weights(s, n, &mut row);
                match p.dest(s, n, &mut rng) {
                    Some(d) => {
                        assert_eq!(row[d as usize], 1.0, "{p} {s}->{d}");
                        assert_eq!(row.iter().sum::<f64>(), 1.0);
                    }
                    None => assert_eq!(row.iter().sum::<f64>(), 0.0),
                }
            }
        }
        // Hotspot: cold sources have empty rows; hot sources spread
        // uniformly over the hot peers.
        for s in 0..n {
            TrafficPattern::UniformHotspot.dest_weights(s, n, &mut row);
            if !TrafficPattern::is_hot(s, n) {
                assert_eq!(row.iter().sum::<f64>(), 0.0);
            } else {
                for (d, &w) in row.iter().enumerate() {
                    if w > 0.0 {
                        assert!(TrafficPattern::is_hot(d as u64, n));
                        assert_ne!(d as u64, s);
                    }
                }
                assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn non_power_of_two_stays_in_range() {
        let mut rng = SimRng::seed(7);
        for p in TrafficPattern::ALL {
            for s in 0..1296u64 {
                if let Some(d) = p.dest(s, 1296, &mut rng) {
                    assert!(d < 1296, "{p}: {s} -> {d}");
                    assert_ne!(d, s);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn src_out_of_range_panics() {
        let mut rng = SimRng::seed(8);
        TrafficPattern::Uniform.dest(64, 64, &mut rng);
    }
}

//! Workload generators for multi-chiplet network evaluation.
//!
//! Three workload families, matching §7.2 of the paper:
//!
//! * [`pattern`] + [`synthetic`] — the six classic traffic patterns
//!   (uniform, uniform-hotspot, bit-shuffle, bit-complement, bit-transpose,
//!   bit-reverse) under open-loop Bernoulli injection;
//! * [`parsec`] — synthetic 64-core CMP cache-traffic traces standing in
//!   for the Netrace PARSEC traces (request/reply, 1-flit and 9-flit
//!   packets, memory controllers at the corners) — see DESIGN.md for the
//!   substitution rationale;
//! * [`collectives`] — ring/tree all-reduce, all-to-all and barrier
//!   schedules: the Motivation-2 traffic the paper contrasts interfaces
//!   on;
//! * [`phase`] — dependency-driven phase graphs: DAGs of
//!   compute/communication phases whose injection is released by eject
//!   feedback from the engine, plus the chiplet-mapped DNN generator and
//!   the versioned on-disk phase-trace format;
//! * [`hpc`] — synthetic HPC traces standing in for the NERSC dumpi traces:
//!   CNS (compressible Navier-Stokes: 3-D nearest-neighbor halo exchange,
//!   local-heavy) and MOC (method of characteristics: long-range sweep
//!   partners, global-heavy) on 1024 ranks.
//!
//! All workloads implement [`Workload`]: the simulation driver polls them
//! once per cycle for newly created packets, which are then queued at their
//! source NICs (packets are injected according to trace time even if
//! queueing occurs, per §7.2).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collectives;
pub mod hpc;
pub mod parsec;
pub mod pattern;
pub mod phase;
pub mod synthetic;
pub mod trace;

pub use pattern::TrafficPattern;
pub use phase::{AllReduceAlgo, DnnSpec, PhaseGraph, PhaseSpec};
pub use synthetic::SyntheticWorkload;
pub use trace::{PacketRequest, TraceWorkload, Workload};

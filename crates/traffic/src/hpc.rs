//! Synthetic HPC traces (NERSC dumpi substitute).
//!
//! The paper's large-scale evaluation (§7.2, Figs. 13/15/17) replays dumpi
//! traces of two DOE mini-apps run on 1024 cores of the Cray XE06 "Hopper":
//!
//! * **CNS** — compressible Navier-Stokes: a 3-D stencil code whose
//!   communication is dominated by nearest-neighbor halo exchange
//!   (local-heavy);
//! * **MOC** — 3-D method of characteristics: rays traverse the whole
//!   domain, so ranks exchange data with far-away partners along the
//!   characteristic directions every sweep (global-heavy).
//!
//! The original traces are not redistributable; this module synthesizes
//! traces with the same locality structure, iteration rhythm and volume
//! (over a million packets at full duration). The paper's observations
//! depend on exactly this locality contrast: hetero-IF gains throughput on
//! CNS, while MOC saturates every network alike.

use crate::trace::{PacketRequest, TraceWorkload};
use chiplet_noc::{OrderClass, Priority};
use chiplet_topo::NodeId;
use simkit::{Cycle, SimRng};

/// The two mini-app traces of §7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HpcApp {
    /// Compressible Navier-Stokes: 3-D halo exchange, local-heavy.
    Cns,
    /// Method of characteristics: long-range sweep partners, global-heavy.
    Moc,
}

impl std::fmt::Display for HpcApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HpcApp::Cns => "CNS",
            HpcApp::Moc => "MOC",
        })
    }
}

/// Iteration period in cycles at unit injection scale.
const ITERATION: Cycle = 2_000;
/// Bulk data packet length (the Table 2 default).
const DATA_LEN: u16 = 16;
/// Packets per halo message.
const CNS_PKTS_PER_MSG: u16 = 3;
/// Packets per characteristic message.
const MOC_PKTS_PER_MSG: u16 = 2;

/// Factors `n` into a near-cubic 3-D grid `(x, y, z)` with `x·y·z = n`
/// (used to lay CNS ranks out in 3-D).
fn grid3(n: usize) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_score = usize::MAX;
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let rem = n / x;
            let mut y = x;
            while y * y <= rem {
                if rem.is_multiple_of(y) {
                    let z = rem / y;
                    let score = z - x; // minimize aspect spread
                    if score < best_score {
                        best_score = score;
                        best = (x, y, z);
                    }
                }
                y += 1;
            }
        }
        x += 1;
    }
    best
}

/// Generates a synthetic HPC trace over the given ranks for `iterations`
/// sweeps.
///
/// # Panics
///
/// Panics if fewer than 8 ranks are given or `iterations == 0`.
pub fn generate(app: HpcApp, ranks: &[NodeId], iterations: u32, seed: u64) -> TraceWorkload {
    assert!(ranks.len() >= 8, "HPC traces need at least 8 ranks");
    assert!(iterations > 0, "need at least one iteration");
    match app {
        HpcApp::Cns => generate_cns(ranks, iterations, seed),
        HpcApp::Moc => generate_moc(ranks, iterations, seed),
    }
}

fn push_msg(
    events: &mut Vec<(Cycle, PacketRequest)>,
    t: Cycle,
    src: NodeId,
    dst: NodeId,
    pkts: u16,
    rng: &mut SimRng,
) {
    // A message = one 1-flit header (in-order) + bulk data packets
    // (unordered: eligible for serial dispatch / bypass).
    events.push((
        t,
        PacketRequest {
            src,
            dst,
            len: 1,
            class: OrderClass::InOrder,
            priority: Priority::Normal,
            tag: 0,
        },
    ));
    for k in 0..pkts {
        events.push((
            t + 1 + k as Cycle + rng.below(4),
            PacketRequest {
                src,
                dst,
                len: DATA_LEN,
                class: OrderClass::Unordered,
                priority: Priority::Normal,
                tag: 0,
            },
        ));
    }
}

fn generate_cns(ranks: &[NodeId], iterations: u32, seed: u64) -> TraceWorkload {
    let n = ranks.len();
    let (gx, gy, gz) = grid3(n);
    let idx = |x: usize, y: usize, z: usize| (z * gy + y) * gx + x;
    let mut root = SimRng::seed(seed ^ 0x434E_5300);
    let mut events = Vec::new();
    for it in 0..iterations {
        let base = it as Cycle * ITERATION;
        for z in 0..gz {
            for y in 0..gy {
                for x in 0..gx {
                    let r = idx(x, y, z);
                    let mut rng = root.fork((it as u64) << 32 | r as u64);
                    let t = base + rng.below(ITERATION / 4);
                    let mut halo = |p: usize| {
                        push_msg(
                            &mut events,
                            t + rng.below(8),
                            ranks[r],
                            ranks[p],
                            CNS_PKTS_PER_MSG,
                            &mut rng,
                        )
                    };
                    if x + 1 < gx {
                        halo(idx(x + 1, y, z));
                    }
                    if x > 0 {
                        halo(idx(x - 1, y, z));
                    }
                    if y + 1 < gy {
                        halo(idx(x, y + 1, z));
                    }
                    if y > 0 {
                        halo(idx(x, y - 1, z));
                    }
                    if z + 1 < gz {
                        halo(idx(x, y, z + 1));
                    }
                    if z > 0 {
                        halo(idx(x, y, z - 1));
                    }
                }
            }
        }
    }
    TraceWorkload::new(events)
}

fn generate_moc(ranks: &[NodeId], iterations: u32, seed: u64) -> TraceWorkload {
    let n = ranks.len();
    let mut root = SimRng::seed(seed ^ 0x4D4F_4300);
    // Characteristic directions: fixed long-range strides across the rank
    // space (rays crossing the domain), plus one short stride.
    let strides = [1usize, n / 7 + 3, n / 3 + 1, n / 2 + 5];
    let mut events = Vec::new();
    for it in 0..iterations {
        let base = it as Cycle * ITERATION;
        for r in 0..n {
            let mut rng = root.fork((it as u64) << 32 | r as u64);
            let t = base + rng.below(ITERATION / 3);
            for (k, &s) in strides.iter().enumerate() {
                // Alternate sweep direction per iteration, like forward and
                // backward characteristic sweeps.
                let p = if (it as usize + k).is_multiple_of(2) {
                    (r + s) % n
                } else {
                    (r + n - s % n) % n
                };
                if p != r {
                    push_msg(
                        &mut events,
                        t + k as Cycle * 3,
                        ranks[r],
                        ranks[p],
                        MOC_PKTS_PER_MSG,
                        &mut rng,
                    );
                }
            }
        }
    }
    TraceWorkload::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_topo::Geometry;

    fn ranks(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn grid3_is_exact_and_near_cubic() {
        assert_eq!(grid3(1024), (8, 8, 16));
        assert_eq!(grid3(8), (2, 2, 2));
        let (x, y, z) = grid3(1000);
        assert_eq!(x * y * z, 1000);
        assert_eq!((x, y, z), (10, 10, 10));
    }

    #[test]
    fn cns_is_local_heavy_on_a_mesh() {
        // Map 1024 ranks onto a 6x6-chiplet system and compare average
        // manhattan distance: CNS must be far more local than MOC.
        let g = Geometry::new(6, 6, 6, 6);
        let nodes: Vec<NodeId> = (0..1024).map(NodeId).collect();
        let cns = generate(HpcApp::Cns, &nodes, 2, 1);
        let moc = generate(HpcApp::Moc, &nodes, 2, 1);
        let avg_dist = |t: &TraceWorkload| {
            let s: u64 = t
                .events()
                .iter()
                .map(|&(_, r)| g.coord(r.src).manhattan(g.coord(r.dst)) as u64)
                .sum();
            s as f64 / t.len() as f64
        };
        let d_cns = avg_dist(&cns);
        let d_moc = avg_dist(&moc);
        // Linear rank placement keeps z-neighbors ~1 chiplet apart, so the
        // contrast is ~1.8x rather than the ideal 3-4x; what matters is the
        // clear local-vs-global ordering.
        assert!(
            d_cns * 1.5 < d_moc,
            "CNS avg distance {d_cns:.1} should be well below MOC {d_moc:.1}"
        );
    }

    #[test]
    fn volume_scales_with_iterations() {
        let one = generate(HpcApp::Cns, &ranks(64), 1, 2);
        let five = generate(HpcApp::Cns, &ranks(64), 5, 2);
        assert!(five.len() >= 4 * one.len());
        // Full scale sanity: 1024 ranks * ~6 neighbors * 4 pkts * iters.
        let full = generate(HpcApp::Cns, &ranks(1024), 50, 2);
        assert!(full.len() > 1_000_000, "got {}", full.len());
    }

    #[test]
    fn moc_packets_mix_header_and_bulk() {
        let t = generate(HpcApp::Moc, &ranks(64), 2, 3);
        let headers = t.events().iter().filter(|&&(_, r)| r.len == 1).count();
        let bulk = t
            .events()
            .iter()
            .filter(|&&(_, r)| r.len == DATA_LEN)
            .count();
        assert!(headers > 0 && bulk > 0);
        assert_eq!(bulk, headers * MOC_PKTS_PER_MSG as usize);
        assert!(t
            .events()
            .iter()
            .all(|&(_, r)| r.len == 1 || r.class == OrderClass::Unordered));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(HpcApp::Moc, &ranks(32), 2, 7);
        let b = generate(HpcApp::Moc, &ranks(32), 2, 7);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    #[should_panic]
    fn too_few_ranks_rejected() {
        generate(HpcApp::Cns, &ranks(4), 1, 1);
    }
}

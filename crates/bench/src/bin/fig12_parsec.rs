//! Regenerates the paper artifact `fig12_parsec` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig12_parsec [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::traces::fig12;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig12(&opts).finish(&opts);
}

//! Regenerates the paper artifact `tab01_interfaces` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin tab01_interfaces [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::tables::tab01;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    tab01(&opts).finish(&opts);
}

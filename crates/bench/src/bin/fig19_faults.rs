//! Regenerates the link-integrity artifacts `fig19_latency_vs_ber` and
//! `fig19_failover` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig19_faults [--full] [--out DIR | --no-out] [--threads N]`

use hetero_bench::experiments::faults::{fig19_ber, fig19_failover};
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig19_ber(&opts).finish(&opts);
    println!();
    fig19_failover(&opts).finish(&opts);
}

//! Regenerates the paper artifact `fig16_energy_uniform` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig16_energy_uniform [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::energy::fig16;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig16(&opts).finish(&opts);
}

//! Regenerates the paper artifact `tab04_synthesis` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin tab04_synthesis [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::tables::tab04;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    tab04(&opts).finish(&opts);
}

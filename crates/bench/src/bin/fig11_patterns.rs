//! Regenerates the paper artifact `fig11_patterns` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig11_patterns [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::patterns::fig11;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig11(&opts).finish(&opts);
}

//! Regenerates the paper artifact `fig13_hpc` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig13_hpc [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::traces::fig13;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig13(&opts).finish(&opts);
}

//! Regenerates the paper artifact `fig15_hc_hpc` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig15_hc_hpc [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::traces::fig15;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig15(&opts).finish(&opts);
}

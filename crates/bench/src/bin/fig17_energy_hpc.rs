//! Regenerates the paper artifact `fig17_energy_hpc` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig17_energy_hpc [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::energy::fig17;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig17(&opts).finish(&opts);
}

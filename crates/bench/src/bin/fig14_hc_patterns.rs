//! Regenerates the paper artifact `fig14_hc_patterns` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig14_hc_patterns [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::patterns::fig14;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig14(&opts).finish(&opts);
}

//! Regenerates the paper artifact `fig08_vt` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig08_vt [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::vt::fig08;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig08(&opts).finish(&opts);
}

//! Regenerates the paper artifact `fig18_local_scale` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin fig18_local_scale [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::energy::fig18;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    fig18(&opts).finish(&opts);
}

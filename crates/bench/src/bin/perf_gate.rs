//! The simulator's performance gate.
//!
//! Times the reference preset — the hetero-PHY torus at the §8.1.1 medium
//! scale (256 nodes) under uniform traffic at a fixed seed — and reports
//! the simulation rate in flits-simulated per second, against the
//! recorded pre-optimization baseline. Emits `BENCH_perf.json` so CI can
//! archive the number and regressions stay visible.
//!
//! ```text
//! perf_gate [--smoke] [--reps N] [--check-speedup] [--threads LIST]
//!           [--out DIR | --no-out]
//! ```
//!
//! * `--smoke` — run the golden-trace bit-identity check, then a single
//!   timing rep (the CI configuration: correctness hard-fails, timing is
//!   recorded but not asserted, since shared runners are noisy);
//! * `--check-speedup` — additionally fail unless the measured rate
//!   reaches 1.5× the recorded baseline (for calibrated machines). On a
//!   1-core host the failure is downgraded to a recorded warning
//!   (`speedup_gate_downgraded` in the JSON) — the target was calibrated
//!   on multi-core hardware;
//! * `--reps N` — timing repetitions (default 5; the best rep wins);
//! * `--threads LIST` — comma-separated shard-thread counts (e.g.
//!   `1,2,4,8`): after the serial measurement, time the same preset once
//!   per count on the sharded engine and record wall-clock speedups into
//!   a `"scaling"` array.
//!
//! Serial reps are timed on **process CPU time** (`/proc/self/stat`,
//! falling back to wall time off Linux): CPU time measures the same work
//! while staying immune to the descheduling noise of shared or
//! quota-throttled runners. The `--threads` scaling sweep necessarily
//! times **wall clock** instead — parallel speedup is the thing being
//! measured, and CPU time would charge the worker pool's spinning as
//! progress. Scaling numbers are therefore only meaningful on a machine
//! with at least as many free cores as the largest thread count; the
//! host's core count is recorded alongside the sweep so a 1-core CI
//! runner's flat curve is not mistaken for a regression.
//!
//! The JSON is also mirrored to `BENCH_perf.json` at the repository root
//! so the benchmark trajectory is tracked alongside `results/`.

use chiplet_topo::NodeId;
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_bench::harness::default_out_dir;
use hetero_if::golden;
use hetero_if::presets::medium_system;
use hetero_if::scheduler::SchedulingProfile;
use hetero_if::sim::{run, RunSpec};
use hetero_if::{NetworkKind, SimConfig};
use simkit::TraceFilter;
use std::path::PathBuf;
use std::time::Instant;

/// Pre-optimization simulation rate of the reference preset on the
/// recording machine (flits/sec, best of 3 reps at the settings below),
/// measured at the commit immediately before the hot-path rework. The
/// speedup reported in `BENCH_perf.json` is relative to this number; it
/// is only meaningful on comparable hardware, which is why the gate
/// asserts it under `--check-speedup` rather than by default.
const BASELINE_FLITS_PER_SEC: f64 = 480_000.0;
const SPEEDUP_TARGET: f64 = 1.5;

/// Ceiling on the metrics-registry overhead (`--check-overhead`): the
/// observability layer's budget is < 3% with the registry armed, and the
/// disabled path must stay at its enum-dispatch cost of ~0%.
const OVERHEAD_TARGET_PCT: f64 = 3.0;

/// The reference workload: uniform traffic on the hetero-PHY torus.
const PRESET: NetworkKind = NetworkKind::HeteroPhyFull;
const RATE: f64 = 0.10;
const PACKET_LEN: u16 = 16;
const SEED: u64 = 42;

struct GateOpts {
    smoke: bool,
    check_speedup: bool,
    check_overhead: bool,
    reps: u32,
    threads: Vec<usize>,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> GateOpts {
    let mut o = GateOpts {
        smoke: false,
        check_speedup: false,
        check_overhead: false,
        reps: 5,
        threads: Vec::new(),
        out_dir: Some(default_out_dir()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--check-speedup" => o.check_speedup = true,
            "--check-overhead" => o.check_overhead = true,
            "--reps" => {
                o.reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--reps expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--threads" => {
                let list = args.next().unwrap_or_default();
                o.threads = list
                    .split(',')
                    .map(|s| {
                        s.trim().parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                            eprintln!("--threads expects positive integers, e.g. 1,2,4,8");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--no-out" => o.out_dir = None,
            "--out" => o.out_dir = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!(
                    "usage: perf_gate [--smoke] [--reps N] [--check-speedup] \
                     [--check-overhead] [--threads LIST] [--out DIR | --no-out]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if o.smoke {
        o.reps = 1;
    }
    o
}

/// Process CPU time (user + system) in seconds, from `/proc/self/stat`.
///
/// Returns `None` off Linux or if the file cannot be parsed; the caller
/// falls back to wall-clock time. Tick rate is `_SC_CLK_TCK`, which is
/// 100 on every Linux configuration this runs on; the ~10 ms
/// quantization is well below rep duration.
fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesized comm (which may itself contain
    // spaces): utime and stime are the 12th and 13th.
    let rest = stat.rsplit(')').next()?;
    let mut fields = rest.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// What the observability layer contributes to a timed rep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Instrument {
    /// Nothing armed: the disabled path (one enum-discriminant check).
    Off,
    /// Metrics registry armed — the configuration the <3% gate covers.
    Metrics,
    /// Metrics plus a full unfiltered trace ring (informational; tracing
    /// has a real per-event cost and carries no overhead budget).
    Full,
}

/// One timed rep: build the reference network fresh at the given shard
/// thread count, run it, and return (CPU seconds, wall seconds, flits
/// delivered over the whole run). `base` is the one `SimConfig` captured
/// at startup, so every rep sees the same resolved thread default even
/// if the environment mutates mid-run.
fn timed_rep(base: SimConfig, threads: usize, instrument: Instrument) -> (f64, f64, u64) {
    let geom = medium_system();
    let config = base.with_shard_threads(threads);
    let mut net = PRESET.build(geom, config, SchedulingProfile::balanced());
    match instrument {
        Instrument::Off => {}
        Instrument::Metrics => net.enable_metrics(),
        Instrument::Full => {
            net.enable_metrics();
            net.enable_trace(1 << 16, TraceFilter::all());
        }
    }
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, RATE, PACKET_LEN, SEED);
    let spec = RunSpec::quick();
    let t0 = Instant::now();
    let c0 = cpu_seconds();
    let out = run(&mut net, &mut w, spec);
    let wall = t0.elapsed().as_secs_f64();
    let cpu = match (c0, cpu_seconds()) {
        (Some(a), Some(b)) if b > a => b - a,
        _ => wall,
    };
    assert!(
        !out.deadlocked && !out.fault_stalled,
        "reference preset must run clean"
    );
    (cpu, wall, net.collector().delivered_flits)
}

/// One scaling-sweep point: best wall-clock over `reps` at `threads`.
struct ScalePoint {
    threads: usize,
    wall_secs: f64,
    flits: u64,
}

fn main() {
    let opts = parse_args();
    // Resolve the config (including the HETERO_SIM_THREADS default) once,
    // up front: reps must not re-read the environment.
    let base_config = SimConfig::default();

    if opts.smoke {
        let dir = golden::default_fixture_dir();
        print!("perf_gate: golden-trace check ({}) ... ", dir.display());
        match golden::check_dir(&dir) {
            Ok(n) => println!("ok ({n} scenarios bit-identical)"),
            Err(report) => {
                println!("FAILED");
                eprintln!("golden traces drifted:\n{report}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "perf_gate: timing {} at {} nodes, rate {RATE}, seed {SEED}, {} rep(s)",
        PRESET.label(),
        medium_system().nodes(),
        opts.reps
    );
    let mut best_secs = f64::INFINITY;
    let mut flits = 0u64;
    for rep in 1..=opts.reps {
        let (secs, _, f) = timed_rep(base_config, 1, Instrument::Off);
        println!("  rep {rep}: {secs:.3}s  ({:.0} flits/s)", f as f64 / secs);
        if secs < best_secs {
            best_secs = secs;
            flits = f;
        }
    }
    let flits_per_sec = flits as f64 / best_secs;
    let speedup = if BASELINE_FLITS_PER_SEC > 0.0 {
        flits_per_sec / BASELINE_FLITS_PER_SEC
    } else {
        0.0
    };
    println!(
        "perf_gate: {flits} flits in {best_secs:.3}s -> {flits_per_sec:.0} flits/s \
         (baseline {BASELINE_FLITS_PER_SEC:.0}, speedup {speedup:.2}x)"
    );

    // Observability overhead: the same serial rep with the metrics
    // registry armed (gated < 3% under --check-overhead), and with
    // full tracing on top (informational only).
    let mut metrics_secs = f64::INFINITY;
    let mut trace_secs = f64::INFINITY;
    for _ in 1..=opts.reps {
        let (secs, _, _) = timed_rep(base_config, 1, Instrument::Metrics);
        metrics_secs = metrics_secs.min(secs);
        let (secs, _, _) = timed_rep(base_config, 1, Instrument::Full);
        trace_secs = trace_secs.min(secs);
    }
    // Clamp negative overheads to 0: an instrumented rep beating the
    // disabled rep is timing noise (scheduler jitter, cache warmth), and
    // a negative percentage in the report reads as a claim that
    // instrumentation speeds the simulator up.
    let overhead_pct = ((metrics_secs / best_secs - 1.0) * 100.0).max(0.0);
    let trace_overhead_pct = ((trace_secs / best_secs - 1.0) * 100.0).max(0.0);
    println!(
        "perf_gate: observability overhead: metrics {overhead_pct:+.2}% \
         ({metrics_secs:.3}s), metrics+trace {trace_overhead_pct:+.2}% \
         ({trace_secs:.3}s) vs disabled {best_secs:.3}s"
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling: Vec<ScalePoint> = Vec::new();
    if !opts.threads.is_empty() {
        println!("perf_gate: shard-thread scaling sweep (wall clock, {host_cores} host cores)");
        for &threads in &opts.threads {
            let mut best_wall = f64::INFINITY;
            let mut f_at_best = 0u64;
            for _ in 1..=opts.reps {
                let (_, wall, f) = timed_rep(base_config, threads, Instrument::Off);
                if wall < best_wall {
                    best_wall = wall;
                    f_at_best = f;
                }
            }
            scaling.push(ScalePoint {
                threads,
                wall_secs: best_wall,
                flits: f_at_best,
            });
        }
        let base_wall = scaling
            .iter()
            .find(|p| p.threads == 1)
            .map_or(scaling[0].wall_secs, |p| p.wall_secs);
        for p in &scaling {
            println!(
                "  {} thread(s): {:.3}s wall  ({:.0} flits/s, {:.2}x vs 1 thread)",
                p.threads,
                p.wall_secs,
                p.flits as f64 / p.wall_secs,
                base_wall / p.wall_secs
            );
        }
    }

    if let Some(dir) = &opts.out_dir {
        let base_wall = scaling.iter().find(|p| p.threads == 1).map(|p| p.wall_secs);
        let scaling_json: Vec<String> = scaling
            .iter()
            .map(|p| {
                format!(
                    "    {{\"threads\": {}, \"wall_secs\": {}, \"flits\": {}, \
                     \"flits_per_sec\": {}, \"speedup_vs_1t\": {}}}",
                    p.threads,
                    p.wall_secs,
                    p.flits,
                    p.flits as f64 / p.wall_secs,
                    base_wall.unwrap_or(p.wall_secs) / p.wall_secs
                )
            })
            .collect();
        let scaling_block = if scaling_json.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n  ]", scaling_json.join(",\n"))
        };
        let json = format!(
            "{{\n  \"preset\": \"{}\",\n  \"nodes\": {},\n  \"rate\": {RATE},\n  \
             \"packet_len\": {PACKET_LEN},\n  \"seed\": {SEED},\n  \"reps\": {},\n  \
             \"flits\": {flits},\n  \"best_secs\": {best_secs},\n  \
             \"flits_per_sec\": {flits_per_sec},\n  \
             \"baseline_flits_per_sec\": {BASELINE_FLITS_PER_SEC},\n  \
             \"speedup\": {speedup},\n  \"speedup_target\": {SPEEDUP_TARGET},\n  \
             \"metrics_secs\": {metrics_secs},\n  \
             \"metrics_overhead_pct\": {overhead_pct},\n  \
             \"trace_secs\": {trace_secs},\n  \
             \"trace_overhead_pct\": {trace_overhead_pct},\n  \
             \"overhead_target_pct\": {OVERHEAD_TARGET_PCT},\n  \
             \"host_cores\": {host_cores},\n  \
             \"speedup_gate_downgraded\": {},\n  \
             \"scaling\": {scaling_block}\n}}\n",
            host_cores == 1 && opts.check_speedup && speedup < SPEEDUP_TARGET,
            PRESET.label(),
            medium_system().nodes(),
            opts.reps,
        );
        let path = dir.join("BENCH_perf.json");
        match std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, &json)) {
            Ok(()) => println!("perf_gate: wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        // Mirror to the repository root so the benchmark trajectory is
        // reviewable next to the sources, not only under results/.
        if let Some(root) = dir.parent() {
            let mirror = root.join("BENCH_perf.json");
            match std::fs::write(&mirror, &json) {
                Ok(()) => println!("perf_gate: wrote {}", mirror.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", mirror.display()),
            }
        }
    }

    if opts.check_speedup && speedup < SPEEDUP_TARGET {
        if host_cores == 1 {
            // A single-core host can't be expected to hit a target
            // calibrated on multi-core machines; record the miss in the
            // JSON (`speedup_gate_downgraded`) instead of failing.
            eprintln!(
                "perf_gate: WARNING speedup gate downgraded on a 1-core host: \
                 {speedup:.2}x < {SPEEDUP_TARGET}x \
                 ({flits_per_sec:.0} vs baseline {BASELINE_FLITS_PER_SEC:.0} flits/s)"
            );
        } else {
            eprintln!(
                "perf_gate: FAILED speedup gate: {speedup:.2}x < {SPEEDUP_TARGET}x \
                 ({flits_per_sec:.0} vs baseline {BASELINE_FLITS_PER_SEC:.0} flits/s)"
            );
            std::process::exit(1);
        }
    }
    if opts.check_overhead && overhead_pct >= OVERHEAD_TARGET_PCT {
        eprintln!(
            "perf_gate: FAILED overhead gate: metrics registry costs \
             {overhead_pct:.2}% >= {OVERHEAD_TARGET_PCT}% \
             ({metrics_secs:.3}s vs {best_secs:.3}s disabled)"
        );
        std::process::exit(1);
    }
}

//! The simulator's performance gate.
//!
//! Times the reference preset — the hetero-PHY torus at the §8.1.1 medium
//! scale (256 nodes) under uniform traffic at a fixed seed — and reports
//! the simulation rate in flits-simulated per second, against the
//! recorded pre-optimization baseline. Emits `BENCH_perf.json` so CI can
//! archive the number and regressions stay visible.
//!
//! ```text
//! perf_gate [--smoke] [--reps N] [--check-speedup] [--check-overhead]
//!           [--threads LIST] [--out DIR | --no-out]
//! ```
//!
//! * `--smoke` — run the golden-trace bit-identity check, then a single
//!   timing rep (the CI configuration: correctness hard-fails, timing is
//!   recorded but not asserted, since shared runners are noisy);
//! * `--check-speedup` — additionally fail unless the measured rate
//!   reaches 1.5× the recorded baseline, and unless the low-rate preset's
//!   idle-skip speedup reaches its own 3× target (for calibrated
//!   machines). On a 1-core host either failure is downgraded to a
//!   recorded warning (`speedup_gate_downgraded` /
//!   `lowrate.skip_gate_downgraded` in the JSON) — the targets were
//!   calibrated on multi-core hardware. Also asserts the serve-cache
//!   gates, which are *not* downgraded on 1-core hosts: a repeated
//!   identical batch against the `hetero-serve` service must come back
//!   ≥ 10× faster than the cold batch (pure cache hits), and a
//!   warm-start sweep on a warmup-heavy schedule must beat the same
//!   sweep run cold by ≥ 2× at one worker;
//! * `--check-overhead` — fail if the armed metrics registry costs ≥ 3%
//!   on either the reference preset or the low-rate preset, or if the
//!   armed analysis trace (the `link,fault,phase` filter — link state
//!   changes, fault injections, phase transitions) costs ≥ 3% on the
//!   reference preset. The *unfiltered* trace — every inject, hop and
//!   PHY dispatch, ~7M retained events per simulated second — is
//!   measured and reported (`trace_full_overhead_pct`) but not gated:
//!   its cost is the per-event emission, merge and retention work, which
//!   scales with event volume and no ring size makes free; a 3% ceiling
//!   on it would be a gate against using the firehose at all, not a
//!   regression guard;
//! * `--reps N` — timing repetitions (default 5; the best rep wins);
//! * `--threads LIST` — comma-separated shard-thread counts (e.g.
//!   `1,2,4,8`): after the serial measurement, time the same preset once
//!   per count on the sharded engine and record wall-clock speedups into
//!   a `"scaling"` array.
//!
//! Serial reps are timed on **process CPU time** (`/proc/self/stat`,
//! falling back to wall time off Linux): CPU time measures the same work
//! while staying immune to the descheduling noise of shared or
//! quota-throttled runners. The `--threads` scaling sweep and the
//! low-rate idle-skip comparison necessarily time **wall clock** instead
//! — parallel speedup (and barrier elision) is the thing being measured,
//! and CPU time would charge the worker pool's spinning as progress.
//!
//! Overhead percentages are computed as **median paired ratios**: each
//! round times every level once (multi-run blocks in one CPU-clock
//! interval, disabled blocks bracketing the round, instrumented order
//! rotating round to round), reduces to one ratio per level against the
//! round's own bracket mean, and the report takes the median ratio
//! across rounds. Each piece answers a failure mode this gate has
//! shipped: `/proc/self/stat` ticks at 10 ms — ~5% of a single ~0.2 s
//! rep, which once produced a 13.8% "trace overhead" that was mostly
//! artifact — so samples are blocks of several identical runs;
//! machine-speed drift on shared hosts runs to double digits over an
//! experiment, so ratios are taken round-locally against a bracketed
//! baseline rather than across the whole experiment; and a frequency
//! step corrupts whole rounds at once, which the cross-round median
//! discards wholesale where any mean would absorb it.
//!
//! The JSON is emitted through [`simkit::json`] — every field set by
//! name on a tree, rendered by a writer that owns quoting — after a
//! hand-rolled `format!` emission shipped a report with an unquoted
//! string value and a boolean in a numeric field. The report is also
//! mirrored to `BENCH_perf.json` at the repository root so the benchmark
//! trajectory is tracked alongside `results/`.

use chiplet_fault::{FaultEvent, FaultScript, FaultTarget, TimedFault};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_bench::harness::default_out_dir;
use hetero_if::golden;
use hetero_if::presets::{medium_system, parsec_system};
use hetero_if::scheduler::SchedulingProfile;
use hetero_if::sim::{run, RunSpec};
use hetero_if::{Network, NetworkKind, SimConfig};
use hetero_serve::api::{Backend, BatchRequest, JobSpec};
use hetero_serve::service::SweepService;
use simkit::json::Json;
use simkit::TraceFilter;
use std::path::PathBuf;
use std::time::Instant;

/// Pre-optimization simulation rate of the reference preset on the
/// recording machine (flits/sec, best of 3 reps at the settings below),
/// measured at the commit immediately before the hot-path rework. The
/// speedup reported in `BENCH_perf.json` is relative to this number; it
/// is only meaningful on comparable hardware, which is why the gate
/// asserts it under `--check-speedup` rather than by default.
const BASELINE_FLITS_PER_SEC: f64 = 480_000.0;
const SPEEDUP_TARGET: f64 = 1.5;

/// Ceiling on the armed-observability overhead (`--check-overhead`):
/// the metrics registry alone, and metrics plus the armed analysis
/// trace ([`TRACE_GATE_FILTER`]), must each stay under 3%; the disabled
/// path must stay at its enum-dispatch cost of ~0%.
const OVERHEAD_TARGET_PCT: f64 = 3.0;

/// The gated trace configuration: the link-level analysis kinds — link
/// state changes (bursts, retransmits, recovery), fault injections and
/// phase transitions — which is what the paper's fault/recovery
/// analyses read and what a user leaves armed across a sweep. On the
/// clean reference preset these kinds fire rarely, so the configuration
/// prices what armed tracing costs the hot path: one filter branch per
/// rejected flit event (~1.8M per rep) plus the per-cycle merge fold.
const TRACE_GATE_FILTER: &str = "link,fault,phase";

/// Ring capacity for both trace configurations — the same 64K-event
/// window either way, so the gated-vs-full comparison isolates *event
/// volume* as the cost axis rather than ring footprint. 64K events is
/// the post-mortem window the old gate used; the CLI export path
/// (`hetero-sim --trace`) uses a 1M-event ring and pays accordingly.
const TRACE_RING_CAP: usize = 1 << 16;

/// Floor on the interleaved overhead-comparison rounds, applied even
/// under `--smoke` (which pins the headline timing to one rep): with a
/// 10 ms CPU-clock tick and ~0.25 s reps, anything less leaves the
/// comparison dominated by quantization rather than by the overhead it
/// claims to measure.
const OVERHEAD_MIN_REPS: u32 = 5;

/// Identical runs timed per overhead sample (one CPU-clock interval
/// around the whole block, builds excluded): a ~0.9 s sample is ~90
/// CPU-clock ticks, cutting per-sample quantization to well under 1%
/// and breaking the tick-phase aliasing a train of individually-timed
/// ~0.2 s reps is prone to.
const OVERHEAD_BLOCK_RUNS: usize = 4;

/// Median of a set of samples (mean of the middle two when even).
/// The overhead estimator reduces each round to one ratio and takes the
/// median across rounds: a frequency step or scheduler burst corrupts
/// the rounds it lands in, and the median discards those wholesale
/// instead of letting them shift an average.
fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// The reference workload: uniform traffic on the hetero-PHY torus.
const PRESET: NetworkKind = NetworkKind::HeteroPhyFull;
const RATE: f64 = 0.10;
const PACKET_LEN: u16 = 16;
const SEED: u64 = 42;

/// The low-rate preset: the same hetero-PHY system at the §8.1.2 PARSEC
/// scale (64 nodes) at an injection rate low enough that most cycles are
/// quiescent — the regime the idle-skip fast-forward exists for. Two
/// shard threads so the skipped cycles elide barrier round-trips, which
/// is where the wall-clock win lives.
const LOWRATE: f64 = 0.002;
const LOWRATE_THREADS: usize = 2;

/// Floor on `lowrate.skip_speedup` under `--check-speedup`: the
/// event-hybrid loop must fast-forward the low-rate preset at least this
/// much faster than the cycle-by-cycle loop.
const SKIP_SPEEDUP_TARGET: f64 = 3.0;

/// Ceiling on the metrics overhead of the low-rate preset. Looser than
/// the reference preset's 3%: the registry's merge cost is paid only on
/// active cycles, and idle-skip shrinks the run's denominator faster
/// than it shrinks the merge work, so the same absolute per-active-cycle
/// cost reads as a higher percentage here. What this gate bounds is that
/// the armed registry stays cheap even when most of the run is being
/// fast-forwarded.
const LOWRATE_OVERHEAD_TARGET_PCT: f64 = 6.0;

/// Floor on the serve-cache batch speedup under `--check-speedup`: a
/// repeated identical batch against `hetero-serve`'s [`SweepService`]
/// must come back at least this much faster than the cold batch that
/// populated the cache. Unlike the engine-speedup gates this one is
/// never downgraded on a 1-core host — a cache hit does not simulate
/// anything, so its latency does not depend on core count.
const SERVE_BATCH_SPEEDUP_TARGET: f64 = 10.0;

/// Floor on the warm-start sweep speedup under `--check-speedup`: on a
/// warmup-heavy schedule, a warm-start job (one paid warm-up forked to
/// every point via checkpoint/restore) must finish at least this much
/// faster than the same sweep run cold on a fresh service. Measured at
/// one worker so the comparison is serial-time against serial-time.
const WARM_SWEEP_SPEEDUP_TARGET: f64 = 2.0;

/// Rates of the serve batch bench (quick schedule, 16-node system):
/// enough points that the cold batch is real simulation work.
const SERVE_RATES: [f64; 4] = [0.02, 0.03, 0.04, 0.05];

/// Rates of the warm-start sweep bench: a fine low-rate sweep, the
/// shape warm-start mode exists for (many points, none saturated, all
/// sharing one long warm-up).
const WARM_RATES: [f64; 6] = [0.010, 0.012, 0.014, 0.016, 0.018, 0.020];

/// Warm-up cycles of the warm-start sweep bench's schedule. Paired with
/// a short measure window so the warm-up dominates each cold point —
/// the regime where forking one warmed checkpoint pays.
const WARM_WARMUP: u64 = 8000;

struct GateOpts {
    smoke: bool,
    check_speedup: bool,
    check_overhead: bool,
    reps: u32,
    threads: Vec<usize>,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> GateOpts {
    let mut o = GateOpts {
        smoke: false,
        check_speedup: false,
        check_overhead: false,
        reps: 5,
        threads: Vec::new(),
        out_dir: Some(default_out_dir()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--check-speedup" => o.check_speedup = true,
            "--check-overhead" => o.check_overhead = true,
            "--reps" => {
                o.reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--reps expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--threads" => {
                let list = args.next().unwrap_or_default();
                o.threads = list
                    .split(',')
                    .map(|s| {
                        s.trim().parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                            eprintln!("--threads expects positive integers, e.g. 1,2,4,8");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--no-out" => o.out_dir = None,
            "--out" => o.out_dir = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!(
                    "usage: perf_gate [--smoke] [--reps N] [--check-speedup] \
                     [--check-overhead] [--threads LIST] [--out DIR | --no-out]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if o.smoke {
        o.reps = 1;
    }
    o
}

/// Process CPU time (user + system) in seconds, from `/proc/self/stat`.
///
/// Returns `None` off Linux or if the file cannot be parsed; the caller
/// falls back to wall-clock time. Tick rate is `_SC_CLK_TCK`, which is
/// 100 on every Linux configuration this runs on; the ~10 ms
/// quantization is why overhead comparisons use summed block totals
/// rather than single reps.
fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesized comm (which may itself contain
    // spaces): utime and stime are the 12th and 13th.
    let rest = stat.rsplit(')').next()?;
    let mut fields = rest.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// What the observability layer contributes to a timed rep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Instrument {
    /// Nothing armed: the disabled path (one enum-discriminant check).
    Off,
    /// Metrics registry armed — the first configuration the <3% gate
    /// covers.
    Metrics,
    /// Metrics plus the armed analysis trace ([`TRACE_GATE_FILTER`])
    /// — the second gated configuration. The flit firehose kinds are
    /// filtered out at emission, so the hot path pays one branch per
    /// rejected event and retains only the rare link-level ones.
    Trace,
    /// Metrics plus a full unfiltered trace into the same ring.
    /// Informational, never gated: retaining every inject, hop and PHY
    /// dispatch costs emission + merge + ring-copy work per event
    /// (~7M events per simulated second on the reference preset), which
    /// scales with traffic and is the price of the firehose, not a
    /// regression.
    TraceFull,
}

/// Arms a freshly-built reference network at the given level.
fn arm(net: &mut Network, instrument: Instrument) {
    match instrument {
        Instrument::Off => {}
        Instrument::Metrics => net.enable_metrics(),
        Instrument::Trace => {
            net.enable_metrics();
            let filter = TraceFilter::parse(TRACE_GATE_FILTER).expect("gate filter parses");
            net.enable_trace(TRACE_RING_CAP, filter);
        }
        Instrument::TraceFull => {
            net.enable_metrics();
            net.enable_trace(TRACE_RING_CAP, TraceFilter::all());
        }
    }
}

/// One timed rep: build the reference network fresh at the given shard
/// thread count, run it, and return (CPU seconds, wall seconds, flits
/// delivered over the whole run). `base` is the one `SimConfig` captured
/// at startup, so every rep sees the same resolved thread default even
/// if the environment mutates mid-run.
fn timed_rep(base: SimConfig, threads: usize, instrument: Instrument) -> (f64, f64, u64) {
    let geom = medium_system();
    let config = base.with_shard_threads(threads);
    let mut net = PRESET.build(geom, config, SchedulingProfile::balanced());
    arm(&mut net, instrument);
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, RATE, PACKET_LEN, SEED);
    let spec = RunSpec::quick();
    let t0 = Instant::now();
    let c0 = cpu_seconds();
    let out = run(&mut net, &mut w, spec);
    let wall = t0.elapsed().as_secs_f64();
    let cpu = match (c0, cpu_seconds()) {
        (Some(a), Some(b)) if b > a => b - a,
        _ => wall,
    };
    assert!(
        !out.deadlocked && !out.fault_stalled,
        "reference preset must run clean"
    );
    (cpu, wall, net.collector().delivered_flits)
}

/// CPU seconds *per run* over a block of `k` identical reference runs
/// timed inside one CPU-clock interval (every network and workload is
/// built, untimed, up front). The simulator is deterministic, so each
/// run in the block does identical work; a block several ticks long
/// divides the 10 ms quantization error per sample by `k` and breaks
/// the tick-phase aliasing that a train of individually-timed ~0.2 s
/// reps is prone to.
fn timed_block(base: SimConfig, instrument: Instrument, k: usize) -> (f64, u64) {
    let geom = medium_system();
    let config = base.with_shard_threads(1);
    let mut runs: Vec<(Network, SyntheticWorkload)> = (0..k)
        .map(|_| {
            let mut net = PRESET.build(geom, config, SchedulingProfile::balanced());
            arm(&mut net, instrument);
            let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
            let w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, RATE, PACKET_LEN, SEED);
            (net, w)
        })
        .collect();
    let t0 = Instant::now();
    let c0 = cpu_seconds();
    let mut flits = 0u64;
    for (net, w) in &mut runs {
        let out = run(net, w, RunSpec::quick());
        assert!(
            !out.deadlocked && !out.fault_stalled,
            "reference preset must run clean"
        );
        flits = net.collector().delivered_flits;
    }
    let wall = t0.elapsed().as_secs_f64();
    let cpu = match (c0, cpu_seconds()) {
        (Some(a), Some(b)) if b > a => b - a,
        _ => wall,
    };
    (cpu / k as f64, flits)
}

/// One low-rate rep: the 64-node hetero-PHY system at `LOWRATE` on
/// `LOWRATE_THREADS` shard threads, with idle-skip forced to `skip`.
/// A benign two-event fault script (unit-multiplier bursts, invisible to
/// results) sits in the measure window so the fast-forward has script
/// edges to stop at — the timed path exercises the same next-event
/// bound the property tests check. Returns (wall seconds, flits).
fn lowrate_rep(base: SimConfig, skip: bool, instrument: Instrument) -> (f64, u64) {
    let geom = parsec_system();
    let config = base
        .with_shard_threads(LOWRATE_THREADS)
        .with_idle_skip(skip);
    let mut net = PRESET.build(geom, config, SchedulingProfile::balanced());
    if instrument != Instrument::Off {
        net.enable_metrics();
    }
    let burst = |at| TimedFault {
        at,
        target: FaultTarget::Link(0),
        event: FaultEvent::Burst {
            mult: 1.0,
            duration: 50,
        },
    };
    net.set_fault_script(FaultScript::new(vec![burst(3000), burst(8000)]));
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, LOWRATE, PACKET_LEN, SEED);
    let t0 = Instant::now();
    let out = run(&mut net, &mut w, RunSpec::quick());
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        !out.deadlocked && !out.fault_stalled,
        "low-rate preset must run clean"
    );
    (wall, net.collector().delivered_flits)
}

/// One serve-bench job: the reference preset at the 16-node geometry.
fn serve_job(rates: &[f64], spec: RunSpec, warm_start: bool) -> JobSpec {
    JobSpec {
        kind: PRESET,
        geom: Geometry::new(2, 2, 2, 2),
        profile: SchedulingProfile::balanced(),
        pattern: TrafficPattern::Uniform,
        rates: rates.to_vec(),
        packet_len: PACKET_LEN,
        spec,
        seed: SEED,
        backend: Backend::Engine,
        warm_start,
        workload: None,
        scales: vec![1.0],
    }
}

/// What the serve benches measured.
struct ServeBench {
    workers: usize,
    cold_secs: f64,
    hot_secs: f64,
    batch_speedup: f64,
    warm_cold_secs: f64,
    warm_secs: f64,
    warm_speedup: f64,
    warm_cycles_saved: u64,
}

/// The `hetero-serve` service benches, exercised through the same
/// [`SweepService`] the binary serves (no sockets: what is being priced
/// is the cache and the scheduler, not loopback TCP).
///
/// * **batch**: run one batch cold on a fresh in-memory service, then
///   the identical batch again — the repeat must be pure cache hits.
///   Wall clock both ways; cold is best-of over fresh services, hot is
///   best-of against the populated one.
/// * **warm sweep**: the warmup-heavy sweep ([`WARM_RATES`] ×
///   [`WARM_WARMUP`]) cold on one fresh service vs warm-start mode on
///   another, one worker each, fresh services per rep so nothing is
///   served from a previous rep's cache.
fn serve_bench(reps: u32) -> ServeBench {
    let workers = std::thread::available_parallelism().map_or(1, usize::from);
    let quick_batch = BatchRequest {
        jobs: vec![serve_job(&SERVE_RATES, RunSpec::quick(), false)],
    };
    let reps = reps.clamp(2, 3);
    let mut cold_secs = f64::INFINITY;
    let mut hot_secs = f64::INFINITY;
    for _ in 0..reps {
        let service = SweepService::new(None, workers).expect("in-memory serve service");
        let t0 = Instant::now();
        service.run_batch(&quick_batch);
        cold_secs = cold_secs.min(t0.elapsed().as_secs_f64());
        let before = service.stats();
        let t0 = Instant::now();
        service.run_batch(&quick_batch);
        hot_secs = hot_secs.min(t0.elapsed().as_secs_f64());
        let after = service.stats();
        assert_eq!(
            after.hits() - before.hits(),
            after.points - before.points,
            "a repeated identical batch must be served entirely from cache"
        );
    }

    let heavy = RunSpec {
        warmup: WARM_WARMUP,
        measure: 500,
        drain: 500,
        ..RunSpec::quick()
    };
    let mut warm_cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    let mut warm_cycles_saved = 0;
    for _ in 0..reps {
        let cold = SweepService::new(None, 1).expect("in-memory serve service");
        let batch = BatchRequest {
            jobs: vec![serve_job(&WARM_RATES, heavy, false)],
        };
        let t0 = Instant::now();
        cold.run_batch(&batch);
        warm_cold_secs = warm_cold_secs.min(t0.elapsed().as_secs_f64());

        let warm = SweepService::new(None, 1).expect("in-memory serve service");
        let batch = BatchRequest {
            jobs: vec![serve_job(&WARM_RATES, heavy, true)],
        };
        let t0 = Instant::now();
        warm.run_batch(&batch);
        warm_secs = warm_secs.min(t0.elapsed().as_secs_f64());
        warm_cycles_saved = warm.stats().warm_cycles_saved;
    }
    ServeBench {
        workers,
        cold_secs,
        hot_secs,
        batch_speedup: cold_secs / hot_secs,
        warm_cold_secs,
        warm_secs,
        warm_speedup: warm_cold_secs / warm_secs,
        warm_cycles_saved,
    }
}

/// One scaling-sweep point: best wall-clock over `reps` at `threads`.
struct ScalePoint {
    threads: usize,
    wall_secs: f64,
    flits: u64,
}

/// Everything the report records, gathered before emission so the JSON
/// assembly is a flat list of named `set` calls.
struct ReportData {
    reps: u32,
    flits: u64,
    best_secs: f64,
    flits_per_sec: f64,
    speedup: f64,
    speedup_gate_downgraded: bool,
    overhead_reps: u32,
    metrics_secs: f64,
    metrics_overhead_pct: f64,
    trace_secs: f64,
    trace_overhead_pct: f64,
    trace_full_secs: f64,
    trace_full_overhead_pct: f64,
    host_cores: usize,
    scaling: Vec<ScalePoint>,
    lowrate_tick_secs: f64,
    lowrate_skip_secs: f64,
    lowrate_flits: u64,
    skip_speedup: f64,
    skip_gate_downgraded: bool,
    lowrate_metrics_secs: f64,
    lowrate_overhead_pct: f64,
    serve: ServeBench,
}

/// Assembles the `BENCH_perf.json` tree. Every field is set by name —
/// the positional `format!` emission this replaces once rotated its
/// argument list by one slot and shipped `"nodes": hetero-phy-full`.
fn build_report(r: &ReportData) -> Json {
    let mut doc = Json::obj();
    doc.set("preset", Json::from(PRESET.label()))
        .set("nodes", Json::from(medium_system().nodes()))
        .set("rate", Json::from(RATE))
        .set("packet_len", Json::from(u64::from(PACKET_LEN)))
        .set("seed", Json::from(SEED))
        .set("reps", Json::from(u64::from(r.reps)))
        .set("flits", Json::from(r.flits))
        .set("best_secs", Json::from(r.best_secs))
        .set("flits_per_sec", Json::from(r.flits_per_sec))
        .set("baseline_flits_per_sec", Json::from(BASELINE_FLITS_PER_SEC))
        .set("speedup", Json::from(r.speedup))
        .set("speedup_target", Json::from(SPEEDUP_TARGET))
        .set("overhead_reps", Json::from(u64::from(r.overhead_reps)))
        .set("metrics_secs", Json::from(r.metrics_secs))
        .set("metrics_overhead_pct", Json::from(r.metrics_overhead_pct))
        .set("trace_ring_cap", Json::from(TRACE_RING_CAP))
        .set("trace_filter", Json::from(TRACE_GATE_FILTER))
        .set("trace_secs", Json::from(r.trace_secs))
        .set("trace_overhead_pct", Json::from(r.trace_overhead_pct))
        .set("trace_full_secs", Json::from(r.trace_full_secs))
        .set(
            "trace_full_overhead_pct",
            Json::from(r.trace_full_overhead_pct),
        )
        .set("overhead_target_pct", Json::from(OVERHEAD_TARGET_PCT))
        .set("host_cores", Json::from(r.host_cores))
        .set(
            "speedup_gate_downgraded",
            Json::from(r.speedup_gate_downgraded),
        );

    let base_wall = r
        .scaling
        .iter()
        .find(|p| p.threads == 1)
        .map(|p| p.wall_secs);
    let scaling = r
        .scaling
        .iter()
        .map(|p| {
            let mut o = Json::obj();
            o.set("threads", Json::from(p.threads))
                .set("wall_secs", Json::from(p.wall_secs))
                .set("flits", Json::from(p.flits))
                .set("flits_per_sec", Json::from(p.flits as f64 / p.wall_secs))
                .set(
                    "speedup_vs_1t",
                    Json::from(base_wall.unwrap_or(p.wall_secs) / p.wall_secs),
                );
            o
        })
        .collect();
    doc.set("scaling", Json::Arr(scaling));

    let mut lowrate = Json::obj();
    lowrate
        .set("preset", Json::from(PRESET.label()))
        .set("nodes", Json::from(parsec_system().nodes()))
        .set("rate", Json::from(LOWRATE))
        .set("threads", Json::from(LOWRATE_THREADS))
        .set("tick_wall_secs", Json::from(r.lowrate_tick_secs))
        .set("skip_wall_secs", Json::from(r.lowrate_skip_secs))
        .set("flits", Json::from(r.lowrate_flits))
        .set("skip_speedup", Json::from(r.skip_speedup))
        .set("skip_speedup_target", Json::from(SKIP_SPEEDUP_TARGET))
        .set("skip_gate_downgraded", Json::from(r.skip_gate_downgraded))
        .set("metrics_wall_secs", Json::from(r.lowrate_metrics_secs))
        .set("overhead_pct", Json::from(r.lowrate_overhead_pct))
        .set(
            "overhead_target_pct",
            Json::from(LOWRATE_OVERHEAD_TARGET_PCT),
        );
    doc.set("lowrate", lowrate);

    let s = &r.serve;
    let mut serve = Json::obj();
    serve
        .set("preset", Json::from(PRESET.label()))
        .set("nodes", Json::from(Geometry::new(2, 2, 2, 2).nodes()))
        .set("workers", Json::from(s.workers))
        .set("batch_rates", Json::from(SERVE_RATES.len()))
        .set("cold_secs", Json::from(s.cold_secs))
        .set("hot_secs", Json::from(s.hot_secs))
        .set("batch_speedup", Json::from(s.batch_speedup))
        .set(
            "batch_speedup_target",
            Json::from(SERVE_BATCH_SPEEDUP_TARGET),
        )
        .set("warm_rates", Json::from(WARM_RATES.len()))
        .set("warm_warmup", Json::from(WARM_WARMUP))
        .set("warm_cold_secs", Json::from(s.warm_cold_secs))
        .set("warm_secs", Json::from(s.warm_secs))
        .set("warm_speedup", Json::from(s.warm_speedup))
        .set("warm_speedup_target", Json::from(WARM_SWEEP_SPEEDUP_TARGET))
        .set("warm_cycles_saved", Json::from(s.warm_cycles_saved));
    doc.set("serve", serve);
    doc
}

fn main() {
    let opts = parse_args();
    // Resolve the config (including the HETERO_SIM_THREADS default) once,
    // up front: reps must not re-read the environment.
    let base_config = SimConfig::default();

    if opts.smoke {
        let dir = golden::default_fixture_dir();
        print!("perf_gate: golden-trace check ({}) ... ", dir.display());
        match golden::check_dir(&dir) {
            Ok(n) => println!("ok ({n} scenarios bit-identical)"),
            Err(report) => {
                println!("FAILED");
                eprintln!("golden traces drifted:\n{report}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "perf_gate: timing {} at {} nodes, rate {RATE}, seed {SEED}, {} rep(s)",
        PRESET.label(),
        medium_system().nodes(),
        opts.reps
    );
    // One round per rep. Each round samples the disabled level at both
    // ends (bracketing) with the three instrumented levels in between,
    // rotating the instrumented order from round to round, and reduces
    // to one ratio per level: level time over the bracket mean. The
    // reported overhead is the *median* ratio across rounds. Each
    // defence targets a failure mode this gate has actually shipped:
    // blocks of `OVERHEAD_BLOCK_RUNS` identical runs per sample beat
    // the 10 ms CPU-tick quantization (a single-rep comparison once
    // reported 13.8% that was mostly artifact); bracketing centres
    // slow machine drift on the baseline; rotation keeps a repeating
    // intra-round drift pattern from always taxing the same level; and
    // the median discards the rounds a frequency step or noisy
    // neighbour lands on wholesale. The rounds are floored at
    // `OVERHEAD_MIN_REPS` even under `--smoke`.
    let oh_reps = opts.reps.max(OVERHEAD_MIN_REPS);
    let mut best_secs = f64::INFINITY;
    let mut flits = 0u64;
    let mut off_reps: Vec<f64> = Vec::new();
    let mut metrics_reps: Vec<f64> = Vec::new();
    let mut trace_reps: Vec<f64> = Vec::new();
    let mut full_reps: Vec<f64> = Vec::new();
    let mut metrics_ratios: Vec<f64> = Vec::new();
    let mut trace_ratios: Vec<f64> = Vec::new();
    let mut full_ratios: Vec<f64> = Vec::new();
    for rep in 1..=oh_reps {
        let (off_a, f) = timed_block(base_config, Instrument::Off, OVERHEAD_BLOCK_RUNS);
        println!(
            "  round {rep}: {off_a:.4}s/run  ({:.0} flits/s)",
            f as f64 / off_a
        );
        off_reps.push(off_a);
        if off_a < best_secs {
            best_secs = off_a;
            flits = f;
        }
        let order = match rep % 3 {
            0 => [
                Instrument::Metrics,
                Instrument::Trace,
                Instrument::TraceFull,
            ],
            1 => [
                Instrument::Trace,
                Instrument::TraceFull,
                Instrument::Metrics,
            ],
            _ => [
                Instrument::TraceFull,
                Instrument::Metrics,
                Instrument::Trace,
            ],
        };
        let mut round = [0.0f64; 3];
        for inst in order {
            let (secs, _) = timed_block(base_config, inst, OVERHEAD_BLOCK_RUNS);
            let slot = match inst {
                Instrument::Metrics => 0,
                Instrument::Trace => 1,
                _ => 2,
            };
            round[slot] = secs;
        }
        metrics_reps.push(round[0]);
        trace_reps.push(round[1]);
        full_reps.push(round[2]);
        let (off_b, f) = timed_block(base_config, Instrument::Off, OVERHEAD_BLOCK_RUNS);
        off_reps.push(off_b);
        if off_b < best_secs {
            best_secs = off_b;
            flits = f;
        }
        let bracket = (off_a + off_b) / 2.0;
        metrics_ratios.push(round[0] / bracket);
        trace_ratios.push(round[1] / bracket);
        full_ratios.push(round[2] / bracket);
    }
    let metrics_secs = metrics_reps.iter().copied().fold(f64::INFINITY, f64::min);
    let trace_secs = trace_reps.iter().copied().fold(f64::INFINITY, f64::min);
    let trace_full_secs = full_reps.iter().copied().fold(f64::INFINITY, f64::min);
    let flits_per_sec = flits as f64 / best_secs;
    let speedup = if BASELINE_FLITS_PER_SEC > 0.0 {
        flits_per_sec / BASELINE_FLITS_PER_SEC
    } else {
        0.0
    };
    println!(
        "perf_gate: {flits} flits in {best_secs:.3}s -> {flits_per_sec:.0} flits/s \
         (baseline {BASELINE_FLITS_PER_SEC:.0}, speedup {speedup:.2}x)"
    );

    // Observability overhead: the metrics registry armed, and the armed
    // analysis trace on top — both gated < 3% under --check-overhead —
    // plus the full unfiltered firehose (informational: retaining every
    // flit event costs per-event emission + merge + copy work that
    // scales with traffic by construction). Each percentage is the
    // median across rounds of that level's per-round ratio against the
    // bracketed disabled baseline (see the round loop above). Clamp
    // negative overheads to 0: an instrumented level beating the
    // disabled level is timing noise (scheduler jitter, cache warmth),
    // and a negative percentage in the report reads as a claim that
    // instrumentation speeds the simulator up.
    let off_mean = median(&off_reps);
    let metrics_mean = median(&metrics_reps);
    let trace_mean = median(&trace_reps);
    let full_mean = median(&full_reps);
    let metrics_overhead_pct = ((median(&metrics_ratios) - 1.0) * 100.0).max(0.0);
    let trace_overhead_pct = ((median(&trace_ratios) - 1.0) * 100.0).max(0.0);
    let trace_full_overhead_pct = ((median(&full_ratios) - 1.0) * 100.0).max(0.0);
    println!(
        "perf_gate: observability overhead (median paired ratio over {oh_reps} round(s)): \
         metrics {metrics_overhead_pct:+.2}% ({metrics_mean:.4}s/rep), \
         metrics+trace[{TRACE_GATE_FILTER}] {trace_overhead_pct:+.2}% ({trace_mean:.4}s/rep), \
         metrics+trace[all] {trace_full_overhead_pct:+.2}% ({full_mean:.4}s/rep) \
         vs disabled {off_mean:.4}s/rep"
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling: Vec<ScalePoint> = Vec::new();
    if !opts.threads.is_empty() {
        println!("perf_gate: shard-thread scaling sweep (wall clock, {host_cores} host cores)");
        for &threads in &opts.threads {
            let mut best_wall = f64::INFINITY;
            let mut f_at_best = 0u64;
            for _ in 1..=opts.reps {
                let (_, wall, f) = timed_rep(base_config, threads, Instrument::Off);
                if wall < best_wall {
                    best_wall = wall;
                    f_at_best = f;
                }
            }
            scaling.push(ScalePoint {
                threads,
                wall_secs: best_wall,
                flits: f_at_best,
            });
        }
        let base_wall = scaling
            .iter()
            .find(|p| p.threads == 1)
            .map_or(scaling[0].wall_secs, |p| p.wall_secs);
        for p in &scaling {
            println!(
                "  {} thread(s): {:.3}s wall  ({:.0} flits/s, {:.2}x vs 1 thread)",
                p.threads,
                p.wall_secs,
                p.flits as f64 / p.wall_secs,
                base_wall / p.wall_secs
            );
        }
    }

    // Low-rate idle-skip comparison: same binary, same workload, the
    // only axis is the event-hybrid fast-forward. Wall clock, best of
    // reps each way; the runs are short (tens of ms) so reps are cheap.
    let lowrate_reps = opts.reps.max(3) * 2;
    let mut lowrate_tick_secs = f64::INFINITY;
    let mut lowrate_skip_secs = f64::INFINITY;
    let mut lowrate_metrics_secs = f64::INFINITY;
    let mut lowrate_flits = 0u64;
    let mut tick_flits = 0u64;
    for _ in 1..=lowrate_reps {
        let (wall, f) = lowrate_rep(base_config, false, Instrument::Off);
        if wall < lowrate_tick_secs {
            lowrate_tick_secs = wall;
            tick_flits = f;
        }
        let (wall, f) = lowrate_rep(base_config, true, Instrument::Off);
        if wall < lowrate_skip_secs {
            lowrate_skip_secs = wall;
            lowrate_flits = f;
        }
        let (wall, _) = lowrate_rep(base_config, true, Instrument::Metrics);
        lowrate_metrics_secs = lowrate_metrics_secs.min(wall);
    }
    assert_eq!(
        tick_flits, lowrate_flits,
        "idle-skip must not change delivered flits"
    );
    let skip_speedup = lowrate_tick_secs / lowrate_skip_secs;
    // Best-of comparison here, unlike the reference preset's block
    // totals: these runs are ~15-20 ms of wall clock, where block sums
    // accumulate every scheduler hiccup of every rep while best-of
    // discards them. Wall (not CPU) because the 10 ms CPU tick is the
    // size of the whole run.
    let lowrate_overhead_pct = ((lowrate_metrics_secs / lowrate_skip_secs - 1.0) * 100.0).max(0.0);
    println!(
        "perf_gate: low-rate preset ({} nodes, rate {LOWRATE}, {LOWRATE_THREADS} threads, \
         best of {lowrate_reps}): tick {lowrate_tick_secs:.4}s, skip {lowrate_skip_secs:.4}s \
         -> skip speedup {skip_speedup:.2}x (target {SKIP_SPEEDUP_TARGET}x), \
         metrics overhead {lowrate_overhead_pct:+.2}% \
         (target {LOWRATE_OVERHEAD_TARGET_PCT}%)",
        parsec_system().nodes()
    );

    // Serve-cache benches: the repeated-batch cache speedup and the
    // warm-start sweep speedup, through the same SweepService the
    // hetero-serve binary fronts.
    let serve = serve_bench(opts.reps);
    println!(
        "perf_gate: serve batch ({} nodes, {} rates, {} worker(s)): cold {:.4}s, \
         hot {:.5}s -> {:.1}x (target {SERVE_BATCH_SPEEDUP_TARGET}x, all hits)",
        Geometry::new(2, 2, 2, 2).nodes(),
        SERVE_RATES.len(),
        serve.workers,
        serve.cold_secs,
        serve.hot_secs,
        serve.batch_speedup
    );
    println!(
        "perf_gate: serve warm-start sweep ({} rates, warmup {WARM_WARMUP}, 1 worker): \
         cold {:.4}s, warm {:.4}s -> {:.2}x (target {WARM_SWEEP_SPEEDUP_TARGET}x, \
         {} warm-up cycles saved)",
        WARM_RATES.len(),
        serve.warm_cold_secs,
        serve.warm_secs,
        serve.warm_speedup,
        serve.warm_cycles_saved
    );

    let speedup_gate_downgraded = host_cores == 1 && opts.check_speedup && speedup < SPEEDUP_TARGET;
    let skip_gate_downgraded =
        host_cores == 1 && opts.check_speedup && skip_speedup < SKIP_SPEEDUP_TARGET;
    let report = ReportData {
        reps: opts.reps,
        flits,
        best_secs,
        flits_per_sec,
        speedup,
        speedup_gate_downgraded,
        overhead_reps: oh_reps,
        metrics_secs,
        metrics_overhead_pct,
        trace_secs,
        trace_overhead_pct,
        trace_full_secs,
        trace_full_overhead_pct,
        host_cores,
        scaling,
        lowrate_tick_secs,
        lowrate_skip_secs,
        lowrate_flits,
        skip_speedup,
        skip_gate_downgraded,
        lowrate_metrics_secs,
        lowrate_overhead_pct,
        serve,
    };

    if let Some(dir) = &opts.out_dir {
        let json = build_report(&report).render();
        let path = dir.join("BENCH_perf.json");
        match std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, &json)) {
            Ok(()) => println!("perf_gate: wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        // Mirror to the repository root so the benchmark trajectory is
        // reviewable next to the sources, not only under results/.
        if let Some(root) = dir.parent() {
            let mirror = root.join("BENCH_perf.json");
            match std::fs::write(&mirror, &json) {
                Ok(()) => println!("perf_gate: wrote {}", mirror.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", mirror.display()),
            }
        }
    }

    if opts.check_speedup && speedup < SPEEDUP_TARGET {
        if host_cores == 1 {
            // A single-core host can't be expected to hit a target
            // calibrated on multi-core machines; record the miss in the
            // JSON (`speedup_gate_downgraded`) instead of failing.
            eprintln!(
                "perf_gate: WARNING speedup gate downgraded on a 1-core host: \
                 {speedup:.2}x < {SPEEDUP_TARGET}x \
                 ({flits_per_sec:.0} vs baseline {BASELINE_FLITS_PER_SEC:.0} flits/s)"
            );
        } else {
            eprintln!(
                "perf_gate: FAILED speedup gate: {speedup:.2}x < {SPEEDUP_TARGET}x \
                 ({flits_per_sec:.0} vs baseline {BASELINE_FLITS_PER_SEC:.0} flits/s)"
            );
            std::process::exit(1);
        }
    }
    if opts.check_speedup && skip_speedup < SKIP_SPEEDUP_TARGET {
        if host_cores == 1 {
            eprintln!(
                "perf_gate: WARNING idle-skip gate downgraded on a 1-core host: \
                 {skip_speedup:.2}x < {SKIP_SPEEDUP_TARGET}x on the low-rate preset"
            );
        } else {
            eprintln!(
                "perf_gate: FAILED idle-skip gate: {skip_speedup:.2}x < \
                 {SKIP_SPEEDUP_TARGET}x on the low-rate preset \
                 (tick {lowrate_tick_secs:.4}s vs skip {lowrate_skip_secs:.4}s)"
            );
            std::process::exit(1);
        }
    }
    // The serve gates are never downgraded on a 1-core host: a cache
    // hit simulates nothing, and the warm-start comparison is pinned to
    // one worker on both sides, so neither depends on core count.
    if opts.check_speedup && report.serve.batch_speedup < SERVE_BATCH_SPEEDUP_TARGET {
        eprintln!(
            "perf_gate: FAILED serve-cache gate: repeated identical batch came back \
             {:.1}x faster < {SERVE_BATCH_SPEEDUP_TARGET}x (cold {:.4}s vs hot {:.5}s)",
            report.serve.batch_speedup, report.serve.cold_secs, report.serve.hot_secs
        );
        std::process::exit(1);
    }
    if opts.check_speedup && report.serve.warm_speedup < WARM_SWEEP_SPEEDUP_TARGET {
        eprintln!(
            "perf_gate: FAILED warm-start gate: warm sweep only {:.2}x faster < \
             {WARM_SWEEP_SPEEDUP_TARGET}x (cold {:.4}s vs warm {:.4}s)",
            report.serve.warm_speedup, report.serve.warm_cold_secs, report.serve.warm_secs
        );
        std::process::exit(1);
    }
    if opts.check_overhead && metrics_overhead_pct >= OVERHEAD_TARGET_PCT {
        eprintln!(
            "perf_gate: FAILED overhead gate: metrics registry costs \
             {metrics_overhead_pct:.2}% >= {OVERHEAD_TARGET_PCT}% \
             ({metrics_mean:.4}s/rep vs {off_mean:.4}s/rep disabled)"
        );
        std::process::exit(1);
    }
    if opts.check_overhead && trace_overhead_pct >= OVERHEAD_TARGET_PCT {
        eprintln!(
            "perf_gate: FAILED overhead gate: armed analysis trace \
             ({TRACE_GATE_FILTER}) costs {trace_overhead_pct:.2}% >= \
             {OVERHEAD_TARGET_PCT}% ({trace_mean:.4}s/rep vs {off_mean:.4}s/rep \
             disabled)"
        );
        std::process::exit(1);
    }
    if opts.check_overhead && lowrate_overhead_pct >= LOWRATE_OVERHEAD_TARGET_PCT {
        eprintln!(
            "perf_gate: FAILED overhead gate (low-rate preset): metrics registry \
             costs {lowrate_overhead_pct:.2}% >= {LOWRATE_OVERHEAD_TARGET_PCT}% \
             ({lowrate_metrics_secs:.4}s vs {lowrate_skip_secs:.4}s disabled)"
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::json::{parse, Json};

    fn sample() -> ReportData {
        ReportData {
            reps: 5,
            flits: 1_234_567,
            best_secs: 0.271,
            flits_per_sec: 4_555_966.8,
            speedup: 9.49,
            speedup_gate_downgraded: false,
            overhead_reps: 5,
            metrics_secs: 0.273,
            metrics_overhead_pct: 0.74,
            trace_secs: 0.277,
            trace_overhead_pct: 1.4,
            trace_full_secs: 0.301,
            trace_full_overhead_pct: 9.8,
            host_cores: 4,
            scaling: vec![
                ScalePoint {
                    threads: 1,
                    wall_secs: 0.28,
                    flits: 1_234_567,
                },
                ScalePoint {
                    threads: 4,
                    wall_secs: 0.09,
                    flits: 1_234_567,
                },
            ],
            lowrate_tick_secs: 0.0542,
            lowrate_skip_secs: 0.0148,
            lowrate_flits: 4_242,
            skip_speedup: 3.66,
            skip_gate_downgraded: false,
            lowrate_metrics_secs: 0.0150,
            lowrate_overhead_pct: 1.35,
            serve: ServeBench {
                workers: 4,
                cold_secs: 0.062,
                hot_secs: 0.0011,
                batch_speedup: 56.4,
                warm_cold_secs: 0.131,
                warm_secs: 0.038,
                warm_speedup: 3.45,
                warm_cycles_saved: 40_000,
            },
        }
    }

    /// The report must round-trip through the parser with every field
    /// carrying the type CI reads it as — the regression this guards
    /// shipped `"nodes": hetero-phy-full` (unquoted) and
    /// `"preset": "false"`.
    #[test]
    fn report_parses_with_correct_types() {
        let text = build_report(&sample()).render();
        let doc = parse(&text).expect("emitted report must be valid JSON");

        assert_eq!(
            doc.get("preset").and_then(Json::as_str),
            Some(PRESET.label())
        );
        assert_eq!(
            doc.get("nodes").and_then(Json::as_u64),
            Some(medium_system().nodes() as u64)
        );
        assert_eq!(doc.get("rate").and_then(Json::as_f64), Some(RATE));
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(SEED));
        assert_eq!(doc.get("flits").and_then(Json::as_u64), Some(1_234_567));
        assert_eq!(
            doc.get("speedup_gate_downgraded").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            doc.get("overhead_target_pct").and_then(Json::as_f64),
            Some(OVERHEAD_TARGET_PCT)
        );

        let scaling = doc
            .get("scaling")
            .and_then(Json::as_arr)
            .expect("scaling array");
        assert_eq!(scaling.len(), 2);
        assert_eq!(scaling[0].get("threads").and_then(Json::as_u64), Some(1));
        assert!(
            scaling[1]
                .get("speedup_vs_1t")
                .and_then(Json::as_f64)
                .unwrap()
                > 3.0
        );

        let lowrate = doc.get("lowrate").expect("lowrate object");
        assert_eq!(
            lowrate.get("nodes").and_then(Json::as_u64),
            Some(parsec_system().nodes() as u64)
        );
        assert_eq!(lowrate.get("rate").and_then(Json::as_f64), Some(LOWRATE));
        assert_eq!(
            lowrate.get("skip_speedup").and_then(Json::as_f64),
            Some(3.66)
        );
        assert_eq!(
            lowrate.get("skip_speedup_target").and_then(Json::as_f64),
            Some(SKIP_SPEEDUP_TARGET)
        );

        let serve = doc.get("serve").expect("serve object");
        assert_eq!(serve.get("nodes").and_then(Json::as_u64), Some(16));
        assert_eq!(
            serve.get("batch_speedup").and_then(Json::as_f64),
            Some(56.4)
        );
        assert_eq!(
            serve.get("batch_speedup_target").and_then(Json::as_f64),
            Some(SERVE_BATCH_SPEEDUP_TARGET)
        );
        assert_eq!(
            serve.get("warm_speedup_target").and_then(Json::as_f64),
            Some(WARM_SWEEP_SPEEDUP_TARGET)
        );
        assert_eq!(
            serve.get("warm_cycles_saved").and_then(Json::as_u64),
            Some(40_000)
        );
    }

    /// An empty scaling sweep must still emit a valid (empty) array.
    #[test]
    fn report_without_scaling_sweep_is_valid() {
        let mut r = sample();
        r.scaling.clear();
        let text = build_report(&r).render();
        let doc = parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("scaling").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
    }
}

//! Runs the ablation studies (ROB capacity, balanced threshold,
//! higher-radix crossbar, bypass).
//!
//! Usage: `cargo run --release -p hetero-bench --bin ablations [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::ablations::ablations;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    ablations(&opts).finish(&opts);
}

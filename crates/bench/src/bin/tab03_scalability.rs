//! Regenerates the paper artifact `tab03_scalability` (see hetero-bench crate docs).
//!
//! Usage: `cargo run --release -p hetero-bench --bin tab03_scalability [--full] [--out DIR | --no-out]`

use hetero_bench::experiments::scalability::tab03;
use hetero_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    tab03(&opts).finish(&opts);
}

//! Shared experiment plumbing: CLI options, report printing, CSV output.

use hetero_if::sim::RunSpec;
use std::fs;
use std::path::PathBuf;

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Run at the paper's exact scale and schedule instead of the reduced
    /// default.
    pub full: bool,
    /// Directory for CSV output (`results/` by default; `-` disables).
    pub out_dir: Option<PathBuf>,
    /// Worker threads for independent simulation jobs (results are
    /// identical for any value; 1 = fully sequential).
    pub threads: usize,
}

impl Opts {
    /// Parses `--full` / `--out <dir>` / `--no-out` / `--threads <n>` from
    /// `std::env::args`.
    pub fn from_args() -> Self {
        let mut full = false;
        let mut out_dir = Some(default_out_dir());
        let mut threads = 1;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => full = true,
                "--no-out" => out_dir = None,
                "--out" => {
                    out_dir = args.next().map(PathBuf::from);
                }
                "--threads" => {
                    threads = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| {
                            eprintln!("--threads expects a positive integer");
                            std::process::exit(2);
                        });
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--full] [--out DIR | --no-out] [--threads N]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        Self {
            full,
            out_dir,
            threads,
        }
    }

    /// The reduced-by-default run schedule (`--full` → the paper's
    /// 100k-cycle Table 2 schedule).
    pub fn spec(&self) -> RunSpec {
        if self.full {
            RunSpec::paper()
        } else {
            RunSpec::quick()
        }
    }
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            full: false,
            out_dir: None,
            threads: 1,
        }
    }
}

/// Runs `f` over `items` on a pool of `threads` scoped worker threads and
/// returns the outputs in input order.
///
/// Each item is processed independently, so the output is identical to
/// `items.into_iter().map(f).collect()` for any thread count; experiments
/// use this to fan simulation jobs out while keeping reports
/// byte-for-byte reproducible. With `threads <= 1` it degenerates to the
/// sequential map (no threads are spawned).
pub fn parallel_map<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<std::sync::Mutex<Option<I>>> = items
        .into_iter()
        .map(|i| std::sync::Mutex::new(Some(i)))
        .collect();
    let slots: Vec<std::sync::Mutex<Option<O>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .expect("job lock")
                    .take()
                    .expect("job taken twice");
                *slots[i].lock().expect("slot lock") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("job not run"))
        .collect()
}

/// The default CSV directory: `results/` next to the workspace root
/// (located via `CARGO_MANIFEST_DIR`, so `cargo bench`/`cargo run` agree
/// regardless of their working directory).
pub fn default_out_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A textual report plus its machine-readable CSV twin.
#[derive(Debug, Default, Clone)]
pub struct Report {
    name: String,
    lines: Vec<String>,
    csv: Vec<String>,
}

impl Report {
    /// Creates an empty report named after the artifact (e.g. `fig11`).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            lines: Vec::new(),
            csv: Vec::new(),
        }
    }

    /// The artifact name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one human-readable line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Appends one CSV row (include a header row first).
    pub fn csv(&mut self, s: impl Into<String>) {
        self.csv.push(s.into());
    }

    /// The human-readable report text.
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }

    /// The CSV body.
    pub fn csv_text(&self) -> String {
        self.csv.join("\n")
    }

    /// Prints the report and writes `<out>/<name>.csv` when requested.
    pub fn finish(&self, opts: &Opts) {
        println!("{}", self.text());
        if let Some(dir) = &opts.out_dir {
            if !self.csv.is_empty() {
                if let Err(e) = fs::create_dir_all(dir).and_then(|_| {
                    fs::write(dir.join(format!("{}.csv", self.name)), self.csv_text())
                }) {
                    eprintln!("warning: could not write CSV for {}: {e}", self.name);
                }
            }
        }
    }
}

/// Formats a latency value, flagging saturation.
pub fn fmt_latency(lat: f64, saturated: bool) -> String {
    if saturated {
        format!("{lat:>9.1}*")
    } else {
        format!("{lat:>9.1} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("x");
        r.line("a");
        r.line("b");
        r.csv("h1,h2");
        assert_eq!(r.text(), "a\nb");
        assert_eq!(r.csv_text(), "h1,h2");
        assert_eq!(r.name(), "x");
    }

    #[test]
    fn default_opts_are_quiet() {
        let o = Opts::default();
        assert!(!o.full);
        assert!(o.out_dir.is_none());
        assert_eq!(o.spec(), RunSpec::quick());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..37).collect();
        let expect: Vec<u32> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 5, 64] {
            let got = parallel_map(items.clone(), threads, |x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn latency_formatting() {
        assert!(fmt_latency(12.0, true).contains('*'));
        assert!(!fmt_latency(12.0, false).contains('*'));
    }
}

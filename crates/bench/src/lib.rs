//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each `fig*`/`tab*` binary reproduces one evaluation artifact of the
//! MICRO'23 hetero-IF paper, printing the same rows/series the paper
//! reports and writing a CSV under `results/`. Binaries default to a
//! *reduced but shape-preserving* configuration (smaller cycle counts
//! and, for the wafer-scale systems, a smaller chiplet grid) so the whole
//! suite completes in minutes on one core; pass `--full` for the paper's
//! exact scales and the Table 2 schedule (hours of wall clock).
//!
//! | Binary | Artifact |
//! |---|---|
//! | `tab01_interfaces` | Table 1 — interface specifications |
//! | `fig08_vt` | Fig. 8 — V–t curves |
//! | `fig11_patterns` | Fig. 11 — hetero-PHY latency vs injection |
//! | `fig12_parsec` | Fig. 12 — hetero-PHY on PARSEC traces |
//! | `fig13_hpc` | Fig. 13 — hetero-PHY on HPC traces |
//! | `fig14_hc_patterns` | Fig. 14 — hetero-channel latency vs injection |
//! | `fig15_hc_hpc` | Fig. 15 — hetero-channel on HPC traces |
//! | `tab03_scalability` | Table 3 — latency reduction across scales |
//! | `tab04_synthesis` | Table 4 — post-synthesis analysis |
//! | `fig16_energy_uniform` | Fig. 16 — energy under uniform traffic |
//! | `fig17_energy_hpc` | Fig. 17 — energy under MOC traces |
//! | `fig18_local_scale` | Fig. 18 — energy vs local-communication scale |
//! | `fig19_faults` | Fig. 19 (beyond the paper) — latency vs BER, throughput through PHY failover |

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::{Opts, Report};

//! Table 1 (interface specifications) and Table 4 (post-synthesis).

use crate::harness::{Opts, Report};
use chiplet_phy::spec::TABLE1;
use chiplet_synthesis::{report, TechNode};

/// Regenerates Table 1.
pub fn tab01(_opts: &Opts) -> Report {
    let mut r = Report::new("tab01_interfaces");
    r.line("Table 1: Specification of typical die-to-die interfaces");
    r.line(format!(
        "{:<8} {:>12} {:>12} {:>12} {:>10}",
        "IF", "rate(Gbps)", "latency(ns)", "pJ/bit", "reach(mm)"
    ));
    r.csv("name,family,data_rate_gbps,latency_ns,power_pj_bit,reach_mm");
    for s in TABLE1 {
        r.line(format!(
            "{:<8} {:>12.1} {:>12.1} {:>12.2} {:>10.1}",
            s.name, s.data_rate_gbps, s.latency_ns, s.power_pj_per_bit, s.reach_mm
        ));
        r.csv(format!(
            "{},{:?},{},{},{},{}",
            s.name, s.family, s.data_rate_gbps, s.latency_ns, s.power_pj_per_bit, s.reach_mm
        ));
    }
    r
}

/// Regenerates Table 4.
pub fn tab04(_opts: &Opts) -> Report {
    let mut r = Report::new("tab04_synthesis");
    let tech = TechNode::n12();
    r.line(format!(
        "Table 4: Post-synthesis analysis (analytical model, {})",
        tech.name
    ));
    r.line(report::header());
    r.csv("group,module,area_um2,power_mw,energy_fj_bit,freq_ghz,crit_ns");
    let rows = report::table4(&tech);
    for row in &rows {
        r.line(row.row());
        let e = &row.estimate;
        r.csv(format!(
            "{},{},{:.0},{:.3},{:.2},{:.3},{:.3}",
            row.group,
            row.name,
            e.area_um2,
            e.power_mw(),
            e.energy_fj_per_bit(),
            e.freq_ghz(),
            e.crit_path_ns
        ));
    }
    let reg = &rows[2].estimate;
    let het = &rows[3].estimate;
    r.line(format!(
        "hetero router overhead: area +{:.0}% (paper: +45%), power +{:.0}% (paper: +33%)",
        (het.area_um2 / reg.area_um2 - 1.0) * 100.0,
        (het.power_mw() / reg.power_mw() - 1.0) * 100.0,
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab01_has_four_interfaces() {
        let r = tab01(&Opts::default());
        assert_eq!(r.csv_text().lines().count(), 5); // header + 4 rows
        assert!(r.text().contains("SerDes"));
        assert!(r.text().contains("UCIe"));
    }

    #[test]
    fn tab04_reports_overhead() {
        let r = tab04(&Opts::default());
        assert!(r.text().contains("hetero router overhead"));
        assert_eq!(r.csv_text().lines().count(), 5);
    }
}

//! Fig. 19 (beyond the paper): link-integrity curves.
//!
//! Two artifacts from the fault subsystem:
//!
//! * `fig19_latency_vs_ber` — average/p99 latency and retry traffic as the
//!   raw serial-wire bit error rate sweeps from 0 to 1e-4, for the
//!   uniform-serial torus and the hetero-PHY torus (both with the
//!   CRC/replay retry layer armed);
//! * `fig19_failover` — delivered-flit throughput over time while every
//!   parallel PHY hard-fails mid-measurement: the hetero-PHY system
//!   shifts onto its serial PHYs and keeps serving, the homogeneous
//!   parallel mesh wedges its cross-chiplet traffic.

use crate::harness::{parallel_map, Opts, Report};
use chiplet_fault::FaultScript;
use chiplet_phy::PhyKind;
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_if::presets::NetworkKind;
use hetero_if::sim::{run, run_probed, RunOutcome};
use hetero_if::{SchedulingProfile, SimConfig};
use simkit::probe::ProgressProbe;

/// The swept raw serial-wire bit error rates (BER 0 measures the armed
/// retry layer's overhead in isolation).
pub const BER_POINTS: [f64; 5] = [0.0, 1e-7, 1e-6, 1e-5, 1e-4];

fn geometry(opts: &Opts) -> Geometry {
    if opts.full {
        Geometry::new(4, 4, 4, 4)
    } else {
        Geometry::new(2, 2, 4, 4)
    }
}

fn workload(geom: Geometry, seed: u64) -> SyntheticWorkload {
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.05, 16, seed)
}

fn run_at_ber(kind: NetworkKind, geom: Geometry, ber: f64, opts: &Opts) -> RunOutcome {
    let config = if ber > 0.0 {
        SimConfig::default().with_seed(7).with_ber(ber)
    } else {
        SimConfig::default().with_seed(7).with_retry()
    };
    let mut net = kind.build(geom, config, SchedulingProfile::balanced());
    let mut w = workload(geom, 7);
    run(&mut net, &mut w, opts.spec())
}

/// The latency-vs-BER curve for the serial torus and the hetero-PHY torus.
pub fn fig19_ber(opts: &Opts) -> Report {
    let mut r = Report::new("fig19_latency_vs_ber");
    let geom = geometry(opts);
    r.line(format!(
        "Fig. 19a: latency vs raw serial-wire BER ({} nodes, uniform 0.05 \
         flits/cycle/node, CRC/replay retry armed)",
        geom.nodes()
    ));
    r.line(format!(
        "{:>8} {:>14} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "ber", "system", "avg(cy)", "p99(cy)", "corrupted", "retx", "drained"
    ));
    r.csv(
        "ber,system,avg_latency,p99_latency,throughput,corrupted_flits,retransmitted_flits,drained",
    );
    let systems = [
        (NetworkKind::UniformSerialTorus, "serial-torus"),
        (NetworkKind::HeteroPhyFull, "hetero-phy"),
    ];
    let jobs: Vec<(f64, NetworkKind, &str)> = BER_POINTS
        .iter()
        .flat_map(|&ber| systems.iter().map(move |&(k, name)| (ber, k, name)))
        .collect();
    let outcomes = parallel_map(jobs, opts.threads, |(ber, kind, name)| {
        (ber, name, run_at_ber(kind, geom, ber, opts))
    });
    for (ber, name, out) in &outcomes {
        let res = &out.results;
        r.line(format!(
            "{:>8.0e} {:>14} {:>9.1} {:>9.1} {:>10} {:>10} {:>8}",
            ber,
            name,
            res.avg_latency,
            res.p99_latency,
            res.corrupted_flits,
            res.retransmitted_flits,
            out.drained
        ));
        r.csv(format!(
            "{ber:e},{name},{:.2},{:.2},{:.5},{},{},{}",
            res.avg_latency,
            res.p99_latency,
            res.throughput,
            res.corrupted_flits,
            res.retransmitted_flits,
            out.drained
        ));
    }
    r
}

/// Throughput over time through a scripted hard failure of every parallel
/// PHY at one third of the measurement window.
pub fn fig19_failover(opts: &Opts) -> Report {
    let mut r = Report::new("fig19_failover");
    let geom = geometry(opts);
    let spec = opts.spec();
    let fail_at = spec.warmup + spec.measure / 3;
    let bin = (spec.measure / 40).max(1);
    r.line(format!(
        "Fig. 19b: delivered flits per cycle while every parallel PHY \
         hard-fails at cycle {fail_at} ({} nodes)",
        geom.nodes()
    ));
    r.line(format!(
        "{:>10} {:>12} {:>14}",
        "cycle", "hetero-phy", "parallel-mesh"
    ));
    r.csv("cycle,hetero_phy_flits_per_cycle,parallel_mesh_flits_per_cycle");
    let series: Vec<Vec<(u64, u64)>> = parallel_map(
        vec![NetworkKind::HeteroPhyFull, NetworkKind::UniformParallelMesh],
        opts.threads,
        |kind| {
            let mut net = kind.build(
                geom,
                SimConfig::default().with_seed(7),
                SchedulingProfile::balanced(),
            );
            net.set_fault_script(FaultScript::single_phy_failure(fail_at, PhyKind::Parallel));
            let mut w = workload(geom, 7);
            let mut probe = ProgressProbe::new(bin);
            let out = run_probed(&mut net, &mut w, spec, &mut [&mut probe]);
            r_note(kind, &out);
            probe
                .snapshots()
                .iter()
                .map(|&(cycle, ref s)| (cycle, s.delivered_flits))
                .collect()
        },
    );
    let (hetero, mesh) = (&series[0], &series[1]);
    let mut prev = (0u64, 0u64);
    for i in 0..hetero.len().min(mesh.len()) {
        let cycle = hetero[i].0;
        let h_rate = (hetero[i].1 - prev.0) as f64 / bin as f64;
        let m_rate = (mesh[i].1 - prev.1) as f64 / bin as f64;
        prev = (hetero[i].1, mesh[i].1);
        r.line(format!("{cycle:>10} {h_rate:>12.2} {m_rate:>14.2}"));
        r.csv(format!("{cycle},{h_rate:.3},{m_rate:.3}"));
    }
    r
}

/// Prints a one-line outcome note for a failover run (threads may
/// interleave these; each line is atomic).
fn r_note(kind: NetworkKind, out: &RunOutcome) {
    eprintln!(
        "  {kind}: drained={} fault_stalled={} failovers={} backlog={}",
        out.drained, out.fault_stalled, out.results.failovers, out.results.backlog
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_curve_covers_the_grid_and_stays_ordered() {
        let opts = Opts::default();
        let r = fig19_ber(&opts);
        // Header + 5 BER points x 2 systems.
        assert_eq!(r.csv_text().lines().count(), 1 + BER_POINTS.len() * 2);
        // Every run at the swept error rates must still deliver.
        assert!(!r.csv_text().contains("false"), "{}", r.csv_text());
    }

    #[test]
    fn failover_timeline_shows_hetero_surviving() {
        let opts = Opts::default();
        let r = fig19_failover(&opts);
        let csv = r.csv_text();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert!(rows.len() >= 10);
        // After the failure point the hetero system keeps delivering.
        let spec = opts.spec();
        let fail_at = spec.warmup + spec.measure / 3;
        let late: Vec<(f64, f64)> = rows
            .iter()
            .filter_map(|row| {
                let mut f = row.split(',');
                let cycle: u64 = f.next()?.parse().ok()?;
                let h: f64 = f.next()?.parse().ok()?;
                let m: f64 = f.next()?.parse().ok()?;
                (cycle > fail_at + 500).then_some((h, m))
            })
            .collect();
        assert!(!late.is_empty());
        let h_sum: f64 = late.iter().map(|&(h, _)| h).sum();
        let m_sum: f64 = late.iter().map(|&(_, m)| m).sum();
        assert!(
            h_sum > 2.0 * m_sum,
            "hetero {h_sum:.1} should dominate mesh {m_sum:.1} after failover"
        );
    }
}

//! Figs. 12, 13, 15: trace-driven evaluations (PARSEC and HPC).

use crate::experiments::{reduced_hpc, reduced_wafer, run_preset};
use crate::harness::{fmt_latency, Opts, Report};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::hpc::{self, HpcApp};
use chiplet_traffic::parsec::{self, ParsecBench};
use chiplet_traffic::TraceWorkload;
use hetero_if::presets::{hpc_system, parsec_system, wafer_system, NetworkKind};
use hetero_if::SchedulingProfile;

/// Fig. 12: hetero-PHY networks replaying the PARSEC-like traces on the
/// 64-node system (4×4 chiplets of 2×2).
pub fn fig12(opts: &Opts) -> Report {
    let mut r = Report::new("fig12_parsec");
    let geom = parsec_system();
    let spec = opts.spec().with_drain_offers();
    let duration = spec.warmup + spec.measure;
    let cores: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    // Memory controllers at the four package corners.
    let mcs = vec![
        geom.node_at(0, 0),
        geom.node_at(geom.width() - 1, 0),
        geom.node_at(0, geom.height() - 1),
        geom.node_at(geom.width() - 1, geom.height() - 1),
    ];
    r.line(format!(
        "Fig. 12: hetero-PHY on PARSEC-like traces — {} nodes, {duration} cycles",
        geom.nodes()
    ));
    let nets = NetworkKind::HETERO_PHY_SET;
    let mut header = format!("{:<14}", "benchmark");
    for net in nets {
        header.push_str(&format!(" {:>21}", net.label()));
    }
    r.line(header + "   (avg latency ± std)");
    r.csv("benchmark,network,avg_latency,latency_std,throughput");
    for bench in ParsecBench::ALL {
        let mut line = format!("{:<14}", bench.to_string());
        for net in nets {
            let mut trace = parsec::generate(bench, &cores, &mcs, duration, 0x000F_1612);
            let res = run_preset(net, geom, SchedulingProfile::balanced(), &mut trace, spec);
            line.push_str(&format!(
                " {:>13.1} ±{:>6.1}",
                res.avg_latency, res.latency_std
            ));
            r.csv(format!(
                "{bench},{},{:.2},{:.2},{:.5}",
                net.label(),
                res.avg_latency,
                res.latency_std,
                res.throughput
            ));
        }
        r.line(line);
    }
    r
}

fn hpc_figure(
    name: &str,
    title: &str,
    nets: &[NetworkKind],
    geom: Geometry,
    ranks: Vec<NodeId>,
    opts: &Opts,
) -> Report {
    let mut r = Report::new(name);
    let spec = opts.spec().with_drain_offers();
    let window = spec.warmup + spec.measure;
    // Injection scale: >1 compresses the trace (more flits/cycle).
    let scales: &[f64] = if opts.full {
        &[0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
    } else {
        &[0.5, 1.0, 2.0, 3.0]
    };
    r.line(format!(
        "{title} — {} nodes, {} ranks, window {window} cycles",
        geom.nodes(),
        ranks.len()
    ));
    r.csv("app,network,inj_scale,avg_latency,throughput,saturated");
    for app in [HpcApp::Cns, HpcApp::Moc] {
        r.line(format!("== {app} =="));
        let mut header = format!("{:>6}", "scale");
        for net in nets {
            header.push_str(&format!(" {:>22}", net.label()));
        }
        r.line(header);
        for &scale in scales {
            // Iterations sized so the rescaled trace covers the window.
            let iterations = ((window as f64 * scale / 2_000.0).ceil() as u32 + 1).max(2);
            let mut line = format!("{scale:>6.2}");
            for net in nets {
                let base = hpc::generate(app, &ranks, iterations, 0x00F1_6000 + scale as u64);
                let mut trace: TraceWorkload = base.rescaled(1.0 / scale);
                let res = run_preset(*net, geom, SchedulingProfile::balanced(), &mut trace, spec);
                line.push_str(&format!(
                    " {:>22}",
                    fmt_latency(res.avg_latency, res.is_saturated())
                ));
                r.csv(format!(
                    "{app},{},{scale},{:.2},{:.5},{}",
                    net.label(),
                    res.avg_latency,
                    res.throughput,
                    res.is_saturated()
                ));
            }
            r.line(line);
        }
        r.line("  (* = saturated)");
    }
    r
}

/// Fig. 13: hetero-PHY networks under the HPC traces (CNS, MOC).
pub fn fig13(opts: &Opts) -> Report {
    let geom = if opts.full {
        hpc_system()
    } else {
        reduced_hpc()
    };
    let nranks = if opts.full { 1024 } else { 256 };
    let ranks: Vec<NodeId> = (0..nranks).map(NodeId).collect();
    hpc_figure(
        "fig13_hpc",
        "Fig. 13: hetero-PHY on HPC traces",
        &NetworkKind::HETERO_PHY_SET,
        geom,
        ranks,
        opts,
    )
}

/// Fig. 15: hetero-channel networks under the HPC traces, ranks mapped to
/// the chiplets' core nodes (§8.1.2).
pub fn fig15(opts: &Opts) -> Report {
    let geom = if opts.full {
        wafer_system()
    } else {
        reduced_wafer()
    };
    let mut ranks = geom.core_nodes();
    if opts.full {
        ranks.truncate(1024);
    }
    hpc_figure(
        "fig15_hc_hpc",
        "Fig. 15: hetero-channel on HPC traces (core nodes)",
        &NetworkKind::HETERO_CHANNEL_SET,
        geom,
        ranks,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_ranks_are_core_nodes() {
        // The reduced wafer (5×5 chiplets) has 3×3 = 9 core nodes per
        // chiplet, 16 chiplets.
        let geom = reduced_wafer();
        assert_eq!(geom.core_nodes().len(), 9 * 16);
        for n in geom.core_nodes() {
            assert!(geom.is_core_node(n));
        }
    }
}

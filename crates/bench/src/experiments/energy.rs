//! Figs. 16–18: energy evaluations (§8.3).

use crate::experiments::run_preset;
use crate::harness::{Opts, Report};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::hpc::{self, HpcApp};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_if::presets::{hpc_system, wafer_system, NetworkKind};
use hetero_if::{SchedulingProfile, SimResults};

/// One (network, profile) energy column.
#[derive(Debug, Clone)]
struct EnergyRow {
    label: String,
    res: SimResults,
}

fn energy_table(r: &mut Report, rows: &[EnergyRow]) {
    r.line(format!(
        "{:<32} {:>10} {:>10} {:>10} {:>10}",
        "network", "total(pJ)", "on-chip", "parallel", "serial"
    ));
    for row in rows {
        r.line(format!(
            "{:<32} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            row.label,
            row.res.avg_energy_pj,
            row.res.avg_onchip_pj,
            row.res.avg_parallel_pj,
            row.res.avg_serial_pj
        ));
        r.csv(format!(
            "{},{:.1},{:.1},{:.1},{:.1}",
            row.label,
            row.res.avg_energy_pj,
            row.res.avg_onchip_pj,
            row.res.avg_parallel_pj,
            row.res.avg_serial_pj
        ));
    }
}

fn pct(hetero: f64, base: f64) -> f64 {
    (1.0 - hetero / base) * 100.0
}

fn uniform_energy(
    kind: NetworkKind,
    geom: Geometry,
    profile: SchedulingProfile,
    rate: f64,
    opts: &Opts,
    nodes: Option<Vec<NodeId>>,
) -> SimResults {
    let nodes = nodes.unwrap_or_else(|| (0..geom.nodes()).map(NodeId).collect());
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, rate, 16, 0xE6E1);
    run_preset(kind, geom, profile, &mut w, opts.spec())
}

/// Fig. 16: average per-packet energy under uniform traffic at 0.1
/// flits/cycle/node — (a) hetero-PHY system, (b) hetero-channel system,
/// each with balanced and energy-efficient scheduling.
pub fn fig16(opts: &Opts) -> Report {
    let mut r = Report::new("fig16_energy_uniform");
    r.csv("network,total_pj,onchip_pj,parallel_pj,serial_pj");
    let bal = SchedulingProfile::balanced();
    let ee = SchedulingProfile::energy_efficient();

    // Energy shapes depend on network diameter, so these experiments keep
    // the paper's geometry even in reduced mode (`--full` only upgrades the
    // schedule to the 100k-cycle Table 2 run).
    let geom_a = hpc_system();
    r.line(format!(
        "Fig. 16(a): hetero-PHY system, uniform 0.1 — {} nodes",
        geom_a.nodes()
    ));
    let rows_a = vec![
        EnergyRow {
            label: "uni-parallel-mesh".into(),
            res: uniform_energy(
                NetworkKind::UniformParallelMesh,
                geom_a,
                bal,
                0.1,
                opts,
                None,
            ),
        },
        EnergyRow {
            label: "uni-serial-torus".into(),
            res: uniform_energy(
                NetworkKind::UniformSerialTorus,
                geom_a,
                bal,
                0.1,
                opts,
                None,
            ),
        },
        EnergyRow {
            label: "hetero-phy (balanced)".into(),
            res: uniform_energy(NetworkKind::HeteroPhyFull, geom_a, bal, 0.1, opts, None),
        },
        EnergyRow {
            label: "hetero-phy (energy-efficient)".into(),
            res: uniform_energy(NetworkKind::HeteroPhyFull, geom_a, ee, 0.1, opts, None),
        },
    ];
    energy_table(&mut r, &rows_a);
    r.line(format!(
        "hetero-phy balanced vs mesh {:+.0}%, vs torus {:+.0}%; energy-efficient gains {:+.0}% further",
        pct(rows_a[2].res.avg_energy_pj, rows_a[0].res.avg_energy_pj),
        pct(rows_a[2].res.avg_energy_pj, rows_a[1].res.avg_energy_pj),
        pct(rows_a[3].res.avg_energy_pj, rows_a[2].res.avg_energy_pj),
    ));

    let geom_b = wafer_system();
    r.line(format!(
        "Fig. 16(b): hetero-channel system, uniform 0.1 — {} nodes",
        geom_b.nodes()
    ));
    let rows_b = vec![
        EnergyRow {
            label: "uni-parallel-mesh".into(),
            res: uniform_energy(
                NetworkKind::UniformParallelMesh,
                geom_b,
                bal,
                0.1,
                opts,
                None,
            ),
        },
        EnergyRow {
            label: "uni-serial-hypercube".into(),
            res: uniform_energy(
                NetworkKind::UniformSerialHypercube,
                geom_b,
                bal,
                0.1,
                opts,
                None,
            ),
        },
        EnergyRow {
            label: "hetero-channel (balanced)".into(),
            res: uniform_energy(NetworkKind::HeteroChannelFull, geom_b, bal, 0.1, opts, None),
        },
        EnergyRow {
            label: "hetero-channel (energy-eff)".into(),
            res: uniform_energy(NetworkKind::HeteroChannelFull, geom_b, ee, 0.1, opts, None),
        },
    ];
    energy_table(&mut r, &rows_b);
    r.line(format!(
        "hetero-channel energy-eff vs mesh {:+.0}% (paper: 31%), vs hypercube {:+.0}% (paper: 13%)",
        pct(rows_b[3].res.avg_energy_pj, rows_b[0].res.avg_energy_pj),
        pct(rows_b[3].res.avg_energy_pj, rows_b[1].res.avg_energy_pj),
    ));
    r
}

/// Fig. 17: per-packet energy replaying the MOC trace — (a) hetero-PHY
/// system, (b) hetero-channel system.
pub fn fig17(opts: &Opts) -> Report {
    let mut r = Report::new("fig17_energy_hpc");
    r.csv("network,total_pj,onchip_pj,parallel_pj,serial_pj");
    let spec = opts.spec().with_drain_offers();
    let window = spec.warmup + spec.measure;
    let iterations = ((window / 2_000) as u32 + 1).max(2);
    let bal = SchedulingProfile::balanced();
    let ee = SchedulingProfile::energy_efficient();

    let geom_a = hpc_system();
    let ranks_a: Vec<NodeId> = (0..1024).map(NodeId).collect();
    let run_trace = |kind: NetworkKind, geom: Geometry, profile, ranks: &[NodeId]| {
        let mut trace = hpc::generate(HpcApp::Moc, ranks, iterations, 0xE617);
        run_preset(kind, geom, profile, &mut trace, spec)
    };

    r.line(format!(
        "Fig. 17(a): hetero-PHY system, MOC trace — {} nodes",
        geom_a.nodes()
    ));
    let rows_a = vec![
        EnergyRow {
            label: "uni-parallel-mesh".into(),
            res: run_trace(NetworkKind::UniformParallelMesh, geom_a, bal, &ranks_a),
        },
        EnergyRow {
            label: "uni-serial-torus".into(),
            res: run_trace(NetworkKind::UniformSerialTorus, geom_a, bal, &ranks_a),
        },
        EnergyRow {
            label: "hetero-phy (balanced)".into(),
            res: run_trace(NetworkKind::HeteroPhyFull, geom_a, bal, &ranks_a),
        },
        EnergyRow {
            label: "hetero-phy (energy-efficient)".into(),
            res: run_trace(NetworkKind::HeteroPhyFull, geom_a, ee, &ranks_a),
        },
    ];
    energy_table(&mut r, &rows_a);
    r.line(format!(
        "hetero-phy vs mesh {:+.0}% (paper: 9%)",
        pct(rows_a[3].res.avg_energy_pj, rows_a[0].res.avg_energy_pj),
    ));

    let geom_b = wafer_system();
    let mut ranks_b = geom_b.core_nodes();
    ranks_b.truncate(1024);
    r.line(format!(
        "Fig. 17(b): hetero-channel system, MOC trace — {} nodes",
        geom_b.nodes()
    ));
    let rows_b = vec![
        EnergyRow {
            label: "uni-parallel-mesh".into(),
            res: run_trace(NetworkKind::UniformParallelMesh, geom_b, bal, &ranks_b),
        },
        EnergyRow {
            label: "uni-serial-hypercube".into(),
            res: run_trace(NetworkKind::UniformSerialHypercube, geom_b, bal, &ranks_b),
        },
        EnergyRow {
            label: "hetero-channel (balanced)".into(),
            res: run_trace(NetworkKind::HeteroChannelFull, geom_b, bal, &ranks_b),
        },
        EnergyRow {
            label: "hetero-channel (energy-eff)".into(),
            res: run_trace(NetworkKind::HeteroChannelFull, geom_b, ee, &ranks_b),
        },
    ];
    energy_table(&mut r, &rows_b);
    r.line(format!(
        "hetero-channel energy-eff vs mesh {:+.0}% (paper: 27%), vs hypercube {:+.0}% (paper: 10%)",
        pct(rows_b[3].res.avg_energy_pj, rows_b[0].res.avg_energy_pj),
        pct(rows_b[3].res.avg_energy_pj, rows_b[1].res.avg_energy_pj),
    ));
    r
}

/// Fig. 18: per-packet energy when communication is restricted to local
/// regions of increasing size (uniform 0.01 flits/cycle/node).
pub fn fig18(opts: &Opts) -> Report {
    let mut r = Report::new("fig18_local_scale");
    r.csv("system,region_chiplets,network,total_pj,onchip_pj,interface_pj");
    let bal = SchedulingProfile::balanced();
    let systems: Vec<(&str, Geometry, [NetworkKind; 3])> = vec![
        (
            "hetero-phy",
            hpc_system(),
            [
                NetworkKind::UniformParallelMesh,
                NetworkKind::UniformSerialTorus,
                NetworkKind::HeteroPhyFull,
            ],
        ),
        (
            "hetero-channel",
            wafer_system(),
            [
                NetworkKind::UniformParallelMesh,
                NetworkKind::UniformSerialHypercube,
                NetworkKind::HeteroChannelFull,
            ],
        ),
    ];
    for (sys, geom, nets) in systems {
        r.line(format!(
            "Fig. 18 [{sys}]: energy vs local-communication scale — {} nodes, uniform 0.01",
            geom.nodes()
        ));
        let mut header = format!("{:>16}", "region");
        for net in nets {
            header.push_str(&format!(" {:>22}", net.label()));
        }
        r.line(header + "  (avg pJ/packet)");
        let mut k = 1u16;
        loop {
            // Participants: the k×k chiplet region at the origin.
            let mut region = Vec::new();
            for cy in 0..k.min(geom.chiplets_y()) {
                for cx in 0..k {
                    let c = geom.chiplet_at(cx, cy);
                    for ly in 0..geom.chip_h() {
                        for lx in 0..geom.chip_w() {
                            region.push(geom.node_in_chiplet(c, lx, ly));
                        }
                    }
                }
            }
            let mut line = format!("{:>13}x{k:<2}", k);
            for net in nets {
                let res = uniform_energy(net, geom, bal, 0.01, opts, Some(region.clone()));
                line.push_str(&format!(" {:>22.0}", res.avg_energy_pj));
                r.csv(format!(
                    "{sys},{k}x{k},{},{:.1},{:.1},{:.1}",
                    net.label(),
                    res.avg_energy_pj,
                    res.avg_onchip_pj,
                    res.avg_interface_pj()
                ));
            }
            r.line(line);
            if k >= geom.chiplets_x() {
                break;
            }
            k = (k * 2).min(geom.chiplets_x());
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_sign_convention() {
        assert!(pct(70.0, 100.0) > 0.0, "savings are positive");
        assert!(pct(130.0, 100.0) < 0.0);
    }
}

//! Table 3: average latency reduction of hetero-IF networks across system
//! scales (uniform traffic at 0.1 flits/cycle/node).

use crate::experiments::run_preset;
use crate::harness::{parallel_map, Opts, Report};
use chiplet_topo::NodeId;
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_if::presets::{paper_scales, NetworkKind};
use hetero_if::SchedulingProfile;

const RATE: f64 = 0.1;

/// The networks evaluated at scale index `i` (hetero-channel only exists
/// at the three largest scales — Table 3 shows "/" below that).
fn kinds_at(i: usize) -> Vec<NetworkKind> {
    let mut kinds = vec![
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
    ];
    if i >= 2 {
        kinds.push(NetworkKind::UniformSerialHypercube);
        kinds.push(NetworkKind::HeteroChannelFull);
    }
    kinds
}

fn avg_latency(kind: NetworkKind, geom: chiplet_topo::Geometry, opts: &Opts) -> f64 {
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, RATE, 16, 0x7AB3);
    run_preset(
        kind,
        geom,
        SchedulingProfile::balanced(),
        &mut w,
        opts.spec(),
    )
    .avg_latency
}

fn reduction(hetero: f64, baseline: f64) -> f64 {
    (1.0 - hetero / baseline) * 100.0
}

/// Regenerates Table 3.
pub fn tab03(opts: &Opts) -> Report {
    let mut r = Report::new("tab03_scalability");
    r.line("Table 3: avg latency reduction of hetero-IF vs uniform-parallel / uniform-serial");
    r.line(format!(
        "{:<10} {:>24} {:>24}",
        "scale", "Hetero-PHY", "Hetero-Channel"
    ));
    r.csv("scale,nodes,phy_vs_parallel_pct,phy_vs_serial_pct,hc_vs_parallel_pct,hc_vs_serial_pct");
    // Every (scale, network) latency is an independent run; compute them
    // all on the worker pool, then format the table sequentially so the
    // report does not depend on `--threads`.
    let scales = paper_scales();
    let jobs: Vec<(NetworkKind, chiplet_topo::Geometry)> = scales
        .iter()
        .enumerate()
        .flat_map(|(i, s)| kinds_at(i).into_iter().map(move |k| (k, s.geometry)))
        .collect();
    let mut latencies = parallel_map(jobs, opts.threads, |(kind, geom)| {
        avg_latency(kind, geom, opts)
    })
    .into_iter();
    let mut lat = || latencies.next().expect("one latency per (scale, network)");
    for (i, scale) in scales.iter().enumerate() {
        let geom = scale.geometry;
        let mesh = lat();
        let torus = lat();
        let hphy = lat();
        let phy_cell = format!(
            "{:>10.1}% / {:>9.1}%",
            reduction(hphy, mesh),
            reduction(hphy, torus)
        );
        // The paper evaluates hetero-channel only at the three largest
        // scales (Table 3 shows "/" for the small ones).
        let (hc_cell, hc_csv) = if i >= 2 {
            let cube = lat();
            let hc = lat();
            (
                format!(
                    "{:>10.1}% / {:>9.1}%",
                    reduction(hc, mesh),
                    reduction(hc, cube)
                ),
                format!("{:.1},{:.1}", reduction(hc, mesh), reduction(hc, cube)),
            )
        } else {
            (format!("{:>24}", "/"), ",".to_string())
        };
        r.line(format!("{:<10} {:>24} {}", scale.label, phy_cell, hc_cell));
        r.csv(format!(
            "{},{},{:.1},{:.1},{}",
            scale.label,
            geom.nodes(),
            reduction(hphy, mesh),
            reduction(hphy, torus),
            hc_csv
        ));
    }
    r.line("(positive = hetero-IF is faster; paper reports 9.6%–46.4% reductions)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert!((reduction(80.0, 100.0) - 20.0).abs() < 1e-9);
        assert!(reduction(120.0, 100.0) < 0.0);
    }
}

//! Table 3: average latency reduction of hetero-IF networks across system
//! scales (uniform traffic at 0.1 flits/cycle/node).

use crate::experiments::run_preset;
use crate::harness::{Opts, Report};
use chiplet_topo::NodeId;
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_if::presets::{paper_scales, NetworkKind};
use hetero_if::SchedulingProfile;

const RATE: f64 = 0.1;

fn avg_latency(kind: NetworkKind, geom: chiplet_topo::Geometry, opts: &Opts) -> f64 {
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, RATE, 16, 0x7AB3);
    run_preset(kind, geom, SchedulingProfile::balanced(), &mut w, opts.spec()).avg_latency
}

fn reduction(hetero: f64, baseline: f64) -> f64 {
    (1.0 - hetero / baseline) * 100.0
}

/// Regenerates Table 3.
pub fn tab03(opts: &Opts) -> Report {
    let mut r = Report::new("tab03_scalability");
    r.line("Table 3: avg latency reduction of hetero-IF vs uniform-parallel / uniform-serial");
    r.line(format!(
        "{:<10} {:>24} {:>24}",
        "scale", "Hetero-PHY", "Hetero-Channel"
    ));
    r.csv("scale,nodes,phy_vs_parallel_pct,phy_vs_serial_pct,hc_vs_parallel_pct,hc_vs_serial_pct");
    for (i, scale) in paper_scales().iter().enumerate() {
        let geom = scale.geometry;
        let mesh = avg_latency(NetworkKind::UniformParallelMesh, geom, opts);
        let torus = avg_latency(NetworkKind::UniformSerialTorus, geom, opts);
        let hphy = avg_latency(NetworkKind::HeteroPhyFull, geom, opts);
        let phy_cell = format!(
            "{:>10.1}% / {:>9.1}%",
            reduction(hphy, mesh),
            reduction(hphy, torus)
        );
        // The paper evaluates hetero-channel only at the three largest
        // scales (Table 3 shows "/" for the small ones).
        let (hc_cell, hc_csv) = if i >= 2 {
            let cube = avg_latency(NetworkKind::UniformSerialHypercube, geom, opts);
            let hc = avg_latency(NetworkKind::HeteroChannelFull, geom, opts);
            (
                format!(
                    "{:>10.1}% / {:>9.1}%",
                    reduction(hc, mesh),
                    reduction(hc, cube)
                ),
                format!("{:.1},{:.1}", reduction(hc, mesh), reduction(hc, cube)),
            )
        } else {
            (format!("{:>24}", "/"), ",".to_string())
        };
        r.line(format!("{:<10} {:>24} {}", scale.label, phy_cell, hc_cell));
        r.csv(format!(
            "{},{},{:.1},{:.1},{}",
            scale.label,
            geom.nodes(),
            reduction(hphy, mesh),
            reduction(hphy, torus),
            hc_csv
        ));
    }
    r.line("(positive = hetero-IF is faster; paper reports 9.6%–46.4% reductions)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert!((reduction(80.0, 100.0) - 20.0).abs() < 1e-9);
        assert!(reduction(120.0, 100.0) < 0.0);
    }
}

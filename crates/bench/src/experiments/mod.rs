//! One module per evaluation artifact of the paper.

pub mod ablations;
pub mod energy;
pub mod faults;
pub mod patterns;
pub mod scalability;
pub mod tables;
pub mod traces;
pub mod vt;

use chiplet_topo::Geometry;
use chiplet_traffic::Workload;
use hetero_if::presets::NetworkKind;
use hetero_if::sim::{run, RunSpec};
use hetero_if::{SchedulingProfile, SimConfig, SimResults};

/// Runs one preset network under a workload and returns the results.
pub(crate) fn run_preset(
    kind: NetworkKind,
    geom: Geometry,
    profile: SchedulingProfile,
    workload: &mut dyn Workload,
    spec: RunSpec,
) -> SimResults {
    let mut net = kind.build(geom, SimConfig::default(), profile);
    run(&mut net, workload, spec).results
}

/// The reduced stand-in for the paper's 3136-node wafer-scale system:
/// 4×4 chiplets of 5×5 nodes (400 nodes, 4 hypercube dimensions) — small
/// enough for minutes-scale sweeps, large enough that the mesh diameter
/// clearly exceeds the hypercube diameter.
pub(crate) fn reduced_wafer() -> Geometry {
    Geometry::new(4, 4, 5, 5)
}

/// The reduced stand-in for the 1296-node HPC system: the 256-node medium
/// system.
pub(crate) fn reduced_hpc() -> Geometry {
    hetero_if::presets::medium_system()
}

//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **ROB capacity** (Eq. 1): an adapter-level sweep showing that
//!    capacities below `B_p · (D_s − D_p)` throttle throughput while the
//!    Eq. 1 size is sufficient (§4.3: "around 10 flits ... close to a
//!    typical packet size").
//! 2. **Balanced-policy threshold** (§5.3.1/§7.3): latency and serial-PHY
//!    usage across thresholds.
//! 3. **Higher-radix interface crossbar** (§4.1): the hetero router vs a
//!    traditional router feeding interfaces at on-chip bandwidth.
//! 4. **Parallel-PHY bypass** (§4.2): tail latency of high-priority
//!    packets with and without the bypass.

use crate::harness::{Opts, Report};
use chiplet_noc::packet::PacketId;
use chiplet_noc::{Flit, OrderClass, Priority};
use chiplet_phy::{HeteroPhyLink, PhyParams, PhyPolicy};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_if::presets::NetworkKind;
use hetero_if::sim::run;
use hetero_if::{SchedulingProfile, SimConfig};

/// Ablation 1: reorder-buffer capacity sweep on one saturated link.
fn rob_capacity(r: &mut Report) {
    let params = PhyParams::full();
    r.line(format!(
        "[1] ROB capacity (Eq. 1 size = {} flits): saturated link; the\n    deliverable-admission rule keeps throughput at combined bandwidth,\n    and the watermark shows Eq. 1 is the real occupancy bound",
        params.rob_capacity()
    ));
    r.line(format!(
        "{:>10} {:>14} {:>12}",
        "capacity", "flits/cycle", "watermark"
    ));
    for cap in [4u16, 8, 15, 30, 60, 120] {
        let mut link = HeteroPhyLink::new(params, PhyPolicy::PerformanceFirst, 64);
        link.set_rob_capacity(cap);
        let cycles = 2_000u64;
        let mut pushed = 0u32;
        let mut delivered = 0u64;
        // Alternate packets across two VCs, 16 flits each, kept saturated.
        let mut seq = [0u16; 2];
        let mut pid = [0u32, 1u32];
        for now in 0..cycles {
            while link.space() > 0 {
                let vc = if seq[0] <= seq[1] { 0 } else { 1 };
                let flit = Flit {
                    pid: PacketId(pid[vc]),
                    seq: seq[vc],
                    vc: vc as u8,
                    last: seq[vc] == 15,
                };
                link.push(now, flit, OrderClass::InOrder, Priority::Normal);
                seq[vc] += 1;
                if seq[vc] == 16 {
                    seq[vc] = 0;
                    pid[vc] += 2;
                    pushed += 1;
                }
            }
            link.advance(now);
            while link.pop_delivered().is_some() {
                delivered += 1;
            }
        }
        let _ = pushed;
        r.line(format!(
            "{:>10} {:>14.2} {:>12}",
            cap,
            delivered as f64 / cycles as f64,
            link.rob_watermark()
        ));
        r.csv(format!(
            "rob_capacity,{cap},{:.3},{}",
            delivered as f64 / cycles as f64,
            link.rob_watermark()
        ));
    }
}

/// Ablation 2: balanced-policy threshold sweep at system level.
fn balanced_threshold(r: &mut Report, opts: &Opts) {
    r.line("[2] balanced-policy threshold (TX FIFO occupancy enabling the serial PHY)");
    r.line(format!(
        "{:>10} {:>14} {:>16} {:>14}",
        "threshold", "latency(cy)", "serial pJ/pkt", "energy(pJ)"
    ));
    let geom = Geometry::new(4, 4, 2, 2);
    for thr in [1u16, 4, 8, 12, 16] {
        let mut profile = SchedulingProfile::balanced();
        profile.phy_policy = PhyPolicy::Balanced { threshold: thr };
        let mut net = NetworkKind::HeteroPhyFull.build(geom, SimConfig::default(), profile);
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.35, 16, 11);
        let res = run(&mut net, &mut w, opts.spec()).results;
        r.line(format!(
            "{:>10} {:>14.1} {:>16.0} {:>14.0}",
            thr, res.avg_latency, res.avg_serial_pj, res.avg_energy_pj
        ));
        r.csv(format!(
            "balanced_threshold,{thr},{:.2},{:.1},{:.1}",
            res.avg_latency, res.avg_serial_pj, res.avg_energy_pj
        ));
    }
}

/// Ablation 3: §4.1 higher-radix crossbar on/off.
fn crossbar(r: &mut Report, opts: &Opts) {
    r.line("[3] higher-radix interface crossbar (§4.1) under convergent load");
    r.line(format!(
        "{:>14} {:>14} {:>14} {:>12}",
        "crossbar", "latency(cy)", "throughput", "saturated"
    ));
    let geom = Geometry::new(4, 4, 2, 2);
    for (name, config) in [
        ("higher-radix", SimConfig::default()),
        (
            "traditional",
            SimConfig::default().without_higher_radix_crossbar(),
        ),
    ] {
        let mut net =
            NetworkKind::HeteroPhyFull.build(geom, config, SchedulingProfile::performance_first());
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        // Bisection-hostile traffic beyond saturation: the metric that
        // matters is accepted throughput (§4.1 is about bandwidth
        // utilization, not zero-load latency).
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::BitComplement, 1.2, 16, 12);
        let res = run(&mut net, &mut w, opts.spec()).results;
        r.line(format!(
            "{:>14} {:>14.1} {:>14.4} {:>12}",
            name,
            res.avg_latency,
            res.throughput,
            res.is_saturated()
        ));
        r.csv(format!(
            "crossbar,{name},{:.2},{:.5},{}",
            res.avg_latency,
            res.throughput,
            res.is_saturated()
        ));
    }
}

/// Ablation 4: §4.2 parallel-PHY bypass on/off — a controlled link-level
/// experiment: a high-priority single-flit packet arrives behind a bulk
/// backlog of varying depth; the bypass lets it jump the TX queue onto the
/// parallel PHY.
fn bypass(r: &mut Report, _opts: &Opts) {
    r.line("[4] parallel-PHY bypass (§4.2): high-priority delivery time vs backlog");
    r.line(format!(
        "{:>10} {:>16} {:>16} {:>10}",
        "backlog", "bypass on (cy)", "bypass off (cy)", "saved"
    ));
    for backlog in [4u16, 8, 16, 32, 48] {
        let mut results = [0u64; 2];
        for (i, enabled) in [true, false].into_iter().enumerate() {
            let mut link = HeteroPhyLink::new(
                PhyParams::full(),
                PhyPolicy::ApplicationAware { threshold: 8 },
                64,
            );
            link.set_bypass_enabled(enabled);
            for s in 0..backlog {
                link.push(
                    0,
                    Flit {
                        pid: PacketId(1),
                        seq: s,
                        vc: 0,
                        last: s + 1 == backlog,
                    },
                    OrderClass::Unordered,
                    Priority::Normal,
                );
            }
            link.push(
                0,
                Flit {
                    pid: PacketId(2),
                    seq: 0,
                    vc: 1,
                    last: true,
                },
                OrderClass::Unordered,
                Priority::High,
            );
            'outer: for now in 1..500u64 {
                link.advance(now);
                while let Some((f, _)) = link.pop_delivered() {
                    if f.pid.0 == 2 {
                        results[i] = now;
                        break 'outer;
                    }
                }
            }
        }
        r.line(format!(
            "{:>10} {:>16} {:>16} {:>10}",
            backlog,
            results[0],
            results[1],
            results[1] as i64 - results[0] as i64
        ));
        r.csv(format!("bypass,{backlog},{},{}", results[0], results[1]));
    }
}

/// Runs all four ablations.
pub fn ablations(opts: &Opts) -> Report {
    let mut r = Report::new("ablations");
    r.line("Ablation studies (design choices of §4–§5)");
    r.csv("study,setting,metric1,metric2,metric3");
    rob_capacity(&mut r);
    balanced_threshold(&mut r, opts);
    crossbar(&mut r, opts);
    bypass(&mut r, opts);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rob_sweep_shows_throttling_then_plateau() {
        let mut r = Report::new("t");
        rob_capacity(&mut r);
        // Parse the CSV rows: throughput at cap 4 must be below cap 120.
        let rows: Vec<(u16, f64)> = r
            .csv_text()
            .lines()
            .filter(|l| l.starts_with("rob_capacity"))
            .map(|l| {
                let f: Vec<&str> = l.split(',').collect();
                (f[1].parse().unwrap(), f[2].parse().unwrap())
            })
            .collect();
        assert_eq!(rows.len(), 6);
        // The deliverable-admission rule keeps throughput near the combined
        // bandwidth at every capacity...
        for (cap, thr) in &rows {
            assert!(*thr > 5.5, "cap {cap}: throughput {thr}");
        }
    }
}

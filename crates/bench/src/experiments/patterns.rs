//! Figs. 11 and 14: latency vs injection rate over the six traffic
//! patterns, for hetero-PHY and hetero-channel systems.

use crate::experiments::reduced_wafer;
use crate::harness::{fmt_latency, parallel_map, Opts, Report};
use chiplet_topo::Geometry;
use chiplet_traffic::TrafficPattern;
use hetero_if::presets::{medium_system, wafer_system, NetworkKind};
use hetero_if::sweep::{preset_sweep, saturation_rate};
use hetero_if::{SchedulingProfile, SimConfig};

fn pattern_figure(
    name: &str,
    title: &str,
    nets: &[NetworkKind],
    geom: Geometry,
    rates: &[f64],
    opts: &Opts,
) -> Report {
    let mut r = Report::new(name);
    r.line(format!(
        "{title} — {} chiplets × ({}×{}) = {} nodes",
        geom.chiplets(),
        geom.chip_w(),
        geom.chip_h(),
        geom.nodes()
    ));
    r.csv("pattern,network,rate,avg_latency,throughput,saturated");
    // Every (pattern, network) curve is an independent sweep; fan them out
    // over the worker pool and format sequentially afterwards, so the
    // report is byte-identical for any `--threads` value.
    let jobs: Vec<(TrafficPattern, NetworkKind)> = TrafficPattern::ALL
        .iter()
        .flat_map(|&p| nets.iter().map(move |&n| (p, n)))
        .collect();
    let mut sweeps = parallel_map(jobs, opts.threads, |(pattern, net)| {
        preset_sweep(
            net,
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
            pattern,
            rates,
            opts.spec(),
        )
    })
    .into_iter();
    for pattern in TrafficPattern::ALL {
        r.line(format!("== {pattern} =="));
        let mut header = format!("{:>6}", "rate");
        for net in nets {
            header.push_str(&format!(" {:>22}", net.label()));
        }
        r.line(header);
        let mut curves = Vec::new();
        for net in nets {
            let pts = sweeps.next().expect("one sweep per (pattern, network)");
            for p in &pts {
                r.csv(format!(
                    "{pattern},{},{},{:.2},{:.5},{}",
                    net.label(),
                    p.rate,
                    p.results.avg_latency,
                    p.results.throughput,
                    p.results.is_saturated()
                ));
            }
            curves.push(pts);
        }
        for (i, &rate) in rates.iter().enumerate() {
            let mut line = format!("{rate:>6.3}");
            let mut any = false;
            for pts in &curves {
                match pts.get(i) {
                    Some(p) => {
                        line.push_str(&format!(
                            " {:>22}",
                            fmt_latency(p.results.avg_latency, p.results.is_saturated())
                        ));
                        any = true;
                    }
                    None => line.push_str(&format!(" {:>22}", "-")),
                }
            }
            if any {
                r.line(line);
            }
        }
        let mut sat_line = String::from("  saturation rate:");
        for (net, pts) in nets.iter().zip(&curves) {
            sat_line.push_str(&format!(
                " {}={}",
                net.label(),
                saturation_rate(pts).map_or("<min".into(), |s| format!("{s:.2}")),
            ));
        }
        r.line(sat_line);
        r.line("  (* = saturated)");
    }
    r
}

/// Fig. 11: hetero-PHY networks on the 256-node medium system.
pub fn fig11(opts: &Opts) -> Report {
    let rates: &[f64] = if opts.full {
        &[0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0]
    } else {
        &[0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8]
    };
    pattern_figure(
        "fig11_patterns",
        "Fig. 11: hetero-PHY latency vs injection rate",
        &NetworkKind::HETERO_PHY_SET,
        medium_system(),
        rates,
        opts,
    )
}

/// Fig. 14: hetero-channel networks on the wafer-scale system (reduced to
/// 400 nodes by default; `--full` uses the paper's 3136 nodes).
pub fn fig14(opts: &Opts) -> Report {
    let geom = if opts.full {
        wafer_system()
    } else {
        reduced_wafer()
    };
    let rates: &[f64] = if opts.full {
        &[0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6]
    } else {
        &[0.02, 0.05, 0.1, 0.2, 0.3, 0.45]
    };
    pattern_figure(
        "fig14_hc_patterns",
        "Fig. 14: hetero-channel latency vs injection rate",
        &NetworkKind::HETERO_CHANNEL_SET,
        geom,
        rates,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke configuration shared by the test suite (full figures
    /// are exercised by the binaries).
    #[test]
    fn pattern_figure_smoke() {
        let opts = Opts::default();
        let r = pattern_figure(
            "smoke",
            "smoke",
            &[NetworkKind::UniformParallelMesh, NetworkKind::HeteroPhyFull],
            Geometry::new(2, 2, 2, 2),
            &[0.05, 0.3],
            &Opts {
                full: false,
                ..opts
            },
        );
        assert!(r.text().contains("uniform"));
        assert!(r.csv_text().lines().count() >= 2 * 2 * 2);
    }

    /// The report is byte-identical for any worker-pool size.
    #[test]
    fn pattern_figure_is_thread_invariant() {
        let figure = |threads| {
            pattern_figure(
                "smoke",
                "smoke",
                &[NetworkKind::UniformParallelMesh, NetworkKind::HeteroPhyFull],
                Geometry::new(2, 2, 2, 2),
                &[0.05, 0.3],
                &Opts {
                    threads,
                    ..Opts::default()
                },
            )
        };
        let sequential = figure(1);
        let parallel = figure(4);
        assert_eq!(sequential.text(), parallel.text());
        assert_eq!(sequential.csv_text(), parallel.csv_text());
    }
}

//! Fig. 8: V–t curves of the bandwidth–latency model (§5.1).

use crate::harness::{Opts, Report};
use chiplet_phy::model::{HeteroVt, VtModel};
use chiplet_phy::spec;

/// Regenerates Fig. 8: (a) full-width curves, (b) pin-constrained curves.
pub fn fig08(_opts: &Opts) -> Report {
    let mut r = Report::new("fig08_vt");
    // Aggregate per-interface bandwidth: 8 lanes each, bits/ns.
    let lanes = 8.0;
    let serial = VtModel::new(spec::SERDES.data_rate_gbps * lanes, spec::SERDES.latency_ns);
    let parallel = VtModel::new(spec::AIB.data_rate_gbps * lanes, spec::AIB.latency_ns);
    let bow = VtModel::new(spec::BOW.data_rate_gbps * lanes, spec::BOW.latency_ns);
    let hetero = HeteroVt { parallel, serial };
    // Pin-constrained: hetero-IF halves each member's lanes (Fig. 8b).
    let hetero_half = HeteroVt {
        parallel: parallel.scaled(0.5),
        serial: serial.scaled(0.5),
    };

    r.line("Fig. 8: V-t curves (volume in bits received by time t)");
    r.line(format!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "t(ns)", "serial", "parallel", "BoW", "hetero", "hetero-half"
    ));
    r.csv("t_ns,serial,parallel,bow,hetero,hetero_half");
    let ts: Vec<f64> = (0..=40).map(|i| i as f64 * 0.5).collect();
    for &t in &ts {
        r.line(format!(
            "{:>6.1} {:>10.0} {:>10.0} {:>10.0} {:>12.0} {:>12.0}",
            t,
            serial.volume(t),
            parallel.volume(t),
            bow.volume(t),
            hetero.volume(t),
            hetero_half.volume(t)
        ));
        r.csv(format!(
            "{t},{},{},{},{},{}",
            serial.volume(t),
            parallel.volume(t),
            bow.volume(t),
            hetero.volume(t),
            hetero_half.volume(t)
        ));
    }
    // The paper's qualitative claims as numbers.
    for v in [64.0, 512.0, 4096.0] {
        r.line(format!(
            "time to deliver {v:>6.0} bits: serial {:>6.2} ns, parallel {:>6.2} ns, hetero {:>6.2} ns",
            serial.time_for(v),
            parallel.time_for(v),
            hetero.time_for(v)
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_series_shape() {
        let r = fig08(&Opts::default());
        assert!(r.csv_text().lines().count() > 40);
        assert!(r.text().contains("time to deliver"));
    }
}

//! The checked-in `BENCH_perf.json` must actually parse.
//!
//! The report is machine-read (CI archives it; the scaling dashboards
//! plot it), and a hand-rolled emitter once shipped it with an unquoted
//! string value — syntactically invalid, silently, for a whole release.
//! This test parses the real artifact at the repository root with the
//! same parser CI uses and checks the fields the dashboards key on.

use simkit::json::{parse, Json};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}

#[test]
fn checked_in_bench_report_is_valid_json() {
    let path = repo_root().join("BENCH_perf.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist and be readable: {e}", path.display()));
    let doc = parse(&text).unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));

    // The two fields the original bug corrupted: `nodes` must be a
    // number and `preset` a non-boolean string.
    let nodes = doc
        .get("nodes")
        .and_then(Json::as_u64)
        .expect("`nodes` must be a number");
    assert!(nodes > 0);
    let preset = doc
        .get("preset")
        .and_then(Json::as_str)
        .expect("`preset` must be a string");
    assert!(!preset.is_empty());
    assert_ne!(preset, "false", "`preset` must not hold a stray boolean");

    // Numeric fields the dashboards read.
    for key in [
        "rate",
        "flits",
        "best_secs",
        "flits_per_sec",
        "speedup",
        "metrics_overhead_pct",
        "trace_overhead_pct",
        "trace_full_overhead_pct",
    ] {
        let v = doc.get(key).and_then(Json::as_f64);
        assert!(
            v.is_some(),
            "`{key}` must be a number, got {:?}",
            doc.get(key)
        );
    }
    assert!(doc.get("scaling").and_then(Json::as_arr).is_some());

    // The low-rate idle-skip block.
    let lowrate = doc.get("lowrate").expect("`lowrate` object");
    let skip_speedup = lowrate
        .get("skip_speedup")
        .and_then(Json::as_f64)
        .expect("`lowrate.skip_speedup` must be a number");
    assert!(skip_speedup > 0.0);
    assert!(lowrate
        .get("tick_wall_secs")
        .and_then(Json::as_f64)
        .is_some());
    assert!(lowrate
        .get("skip_wall_secs")
        .and_then(Json::as_f64)
        .is_some());

    // The gated trace is the armed analysis filter, not the firehose:
    // the filter string is recorded so a dashboard (or a reviewer) can
    // see exactly which event classes the 3% promise covers.
    let filter = doc
        .get("trace_filter")
        .and_then(Json::as_str)
        .expect("`trace_filter` must be a string");
    assert!(!filter.is_empty());

    // The serve-layer block: cold/hot batch and warm-start sweep
    // timings plus the targets the local gate enforces.
    let serve = doc.get("serve").expect("`serve` object");
    for key in [
        "cold_secs",
        "hot_secs",
        "batch_speedup",
        "batch_speedup_target",
        "warm_cold_secs",
        "warm_secs",
        "warm_speedup",
        "warm_speedup_target",
        "warm_cycles_saved",
    ] {
        let v = serve.get(key).and_then(Json::as_f64);
        assert!(
            v.is_some(),
            "`serve.{key}` must be a number, got {:?}",
            serve.get(key)
        );
    }
    let batch_target = serve
        .get("batch_speedup_target")
        .and_then(Json::as_f64)
        .expect("checked above");
    assert!(batch_target >= 10.0, "the batch gate must stay at >=10x");
}

/// The report is published twice — at the repository root (the
/// documented artifact) and under `results/` (what CI uploads). They
/// must be the same bytes: `perf_gate --out results` writes both from
/// one buffer, and any divergence means one copy went stale.
#[test]
fn root_and_results_bench_reports_are_byte_identical() {
    let root = repo_root();
    let canonical = std::fs::read(root.join("BENCH_perf.json"))
        .expect("root BENCH_perf.json must exist and be readable");
    let mirror = std::fs::read(root.join("results/BENCH_perf.json"))
        .expect("results/BENCH_perf.json must exist and be readable");
    assert!(
        canonical == mirror,
        "BENCH_perf.json and results/BENCH_perf.json have diverged; \
         regenerate both with `perf_gate --out results`"
    );
}

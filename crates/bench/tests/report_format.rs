//! The checked-in `BENCH_perf.json` must actually parse.
//!
//! The report is machine-read (CI archives it; the scaling dashboards
//! plot it), and a hand-rolled emitter once shipped it with an unquoted
//! string value — syntactically invalid, silently, for a whole release.
//! This test parses the real artifact at the repository root with the
//! same parser CI uses and checks the fields the dashboards key on.

use simkit::json::{parse, Json};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}

#[test]
fn checked_in_bench_report_is_valid_json() {
    let path = repo_root().join("BENCH_perf.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist and be readable: {e}", path.display()));
    let doc = parse(&text).unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));

    // The two fields the original bug corrupted: `nodes` must be a
    // number and `preset` a non-boolean string.
    let nodes = doc
        .get("nodes")
        .and_then(Json::as_u64)
        .expect("`nodes` must be a number");
    assert!(nodes > 0);
    let preset = doc
        .get("preset")
        .and_then(Json::as_str)
        .expect("`preset` must be a string");
    assert!(!preset.is_empty());
    assert_ne!(preset, "false", "`preset` must not hold a stray boolean");

    // Numeric fields the dashboards read.
    for key in [
        "rate",
        "flits",
        "best_secs",
        "flits_per_sec",
        "speedup",
        "metrics_overhead_pct",
        "trace_overhead_pct",
    ] {
        let v = doc.get(key).and_then(Json::as_f64);
        assert!(
            v.is_some(),
            "`{key}` must be a number, got {:?}",
            doc.get(key)
        );
    }
    assert!(doc.get("scaling").and_then(Json::as_arr).is_some());

    // The low-rate idle-skip block.
    let lowrate = doc.get("lowrate").expect("`lowrate` object");
    let skip_speedup = lowrate
        .get("skip_speedup")
        .and_then(Json::as_f64)
        .expect("`lowrate.skip_speedup` must be a number");
    assert!(skip_speedup > 0.0);
    assert!(lowrate
        .get("tick_wall_secs")
        .and_then(Json::as_f64)
        .is_some());
    assert!(lowrate
        .get("skip_wall_secs")
        .and_then(Json::as_f64)
        .is_some());
}

//! Criterion benchmarks over the paper's experiment kernels.
//!
//! Each group first prints the reduced paper artifact once (so
//! `cargo bench` output doubles as a regeneration log — see
//! EXPERIMENTS.md), then measures a small representative kernel.

use chiplet_phy::model::{HeteroVt, VtModel};
use chiplet_synthesis::{report, TechNode};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use hetero_bench::experiments::{tables, vt};
use hetero_bench::Opts;
use hetero_if::presets::NetworkKind;
use hetero_if::sim::{run, RunSpec};
use hetero_if::{SchedulingProfile, SimConfig};

fn opts() -> Opts {
    Opts::default()
}

/// Fig. 8 kernel: evaluating the analytical V–t model.
fn bench_fig08(c: &mut Criterion) {
    vt::fig08(&opts()).finish(&opts());
    let h = HeteroVt {
        parallel: VtModel::new(51.2, 3.5),
        serial: VtModel::new(896.0, 5.5),
    };
    c.bench_function("fig08_vt_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += h.volume(i as f64 * 0.25) + h.time_for(i as f64 * 64.0);
            }
            std::hint::black_box(acc)
        })
    });
}

/// Table 4 kernel: the full post-synthesis report.
fn bench_tab04(c: &mut Criterion) {
    tables::tab04(&opts()).finish(&opts());
    tables::tab01(&opts()).finish(&opts());
    let tech = TechNode::n12();
    c.bench_function("tab04_synthesis_model", |b| {
        b.iter(|| std::hint::black_box(report::table4(&tech)))
    });
}

/// Simulation kernel shared by Figs. 11–18: 500 cycles of a 64-node
/// hetero-PHY torus under moderate uniform load (per-network-kind group).
fn bench_sim_kernels(c: &mut Criterion) {
    let geom = Geometry::new(4, 4, 2, 2);
    let mut group = c.benchmark_group("sim_500cycles_64nodes");
    group.sample_size(10);
    for kind in [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::UniformSerialHypercube,
        NetworkKind::HeteroChannelFull,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
                let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
                let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.2, 16, 1);
                let mut buf = Vec::new();
                for _ in 0..500 {
                    w.poll(net.now(), &mut buf);
                    for req in buf.drain(..) {
                        net.offer(req);
                    }
                    net.step();
                }
                std::hint::black_box(net.collector().delivered_packets)
            })
        });
    }
    group.finish();
}

/// End-to-end kernel: a complete smoke-scale run (warm-up + measure +
/// drain) on the hetero-PHY torus — the unit of work behind every sweep
/// point in Figs. 11/13/14/15.
fn bench_run_point(c: &mut Criterion) {
    let geom = Geometry::new(2, 2, 3, 3);
    let mut group = c.benchmark_group("sweep_point_36nodes");
    group.sample_size(10);
    group.bench_function("hetero_phy_smoke_run", |b| {
        b.iter(|| {
            let mut net = NetworkKind::HeteroPhyFull.build(
                geom,
                SimConfig::default(),
                SchedulingProfile::balanced(),
            );
            let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
            let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.1, 16, 2);
            std::hint::black_box(run(&mut net, &mut w, RunSpec::smoke()).results.packets)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig08,
    bench_tab04,
    bench_sim_kernels,
    bench_run_point
);
criterion_main!(benches);

//! Non-criterion bench target that regenerates **every** table and figure
//! of the paper at the reduced scale in one `cargo bench` invocation.
//!
//! (The criterion micro-benchmarks live in `paper.rs`; this target is the
//! full harness — it prints each artifact's rows and writes the CSVs to
//! `results/`.)

use hetero_bench::experiments::{ablations, energy, patterns, scalability, tables, traces, vt};
use hetero_bench::{Opts, Report};
use std::time::Instant;

fn main() {
    // `cargo bench` passes `--bench`; ignore criterion-style arguments and
    // honor only `--full` and `--threads N`.
    let full = std::env::args().any(|a| a == "--full");
    let mut threads = 1;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            threads = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
        }
    }
    let opts = Opts {
        full,
        out_dir: Some(hetero_bench::harness::default_out_dir()),
        threads,
    };
    type Artifact = (&'static str, fn(&Opts) -> Report);
    let artifacts: Vec<Artifact> = vec![
        ("tab01", tables::tab01),
        ("fig08", vt::fig08),
        ("fig11", patterns::fig11),
        ("fig12", traces::fig12),
        ("fig13", traces::fig13),
        ("fig14", patterns::fig14),
        ("fig15", traces::fig15),
        ("tab03", scalability::tab03),
        ("tab04", tables::tab04),
        ("fig16", energy::fig16),
        ("fig17", energy::fig17),
        ("fig18", energy::fig18),
        ("ablations", ablations::ablations),
    ];
    let t0 = Instant::now();
    for (name, f) in artifacts {
        let t = Instant::now();
        println!("\n================ {name} ================");
        f(&opts).finish(&opts);
        println!("[{name} took {:.1?}]", t.elapsed());
    }
    println!(
        "\nall {} artifacts regenerated in {:.1?} (mode: {})",
        13,
        t0.elapsed(),
        if full { "full/paper" } else { "reduced" }
    );
}

//! The parallel cycle driver: one persistent worker per shard.
//!
//! [`run_parallel`] runs the warm-up/measure/drain schedule of
//! [`crate::sim`] with the two per-cycle phases executed concurrently
//! across shards. The calling thread is both the orchestrator and the
//! driver of shard 0; shards 1.. get scoped worker threads that live for
//! the whole run. Per cycle:
//!
//! ```text
//! leader (shard 0)                  workers (shards 1..)
//! ───────────────────               ─────────────────────
//! poll workload, offer,             parked at gate A
//! pump fault script
//! release A ──────────────────────▶ phase 1 (credits + media)
//! phase 1 (shard 0)                 arrive at gate B
//! wait all at B
//! release B ──────────────────────▶ phase 2 (inject + route)
//! phase 2 (shard 0)                 arrive back at gate A
//! wait all at A
//! merge stats/probes, advance clock (all workers parked)
//! ```
//!
//! The barrier between the phases is what makes cross-shard flit
//! exchange exact: every boundary flit is posted in phase 1 and lands in
//! its destination router at the start of phase 2 — the same point in
//! the cycle the serial media stage would have delivered it. All
//! order-sensitive work (workload polling, fault scripting, stat and
//! probe merging, packet-descriptor free) happens on the leader while
//! every worker is parked, in an order that does not depend on worker
//! scheduling — which is why a run at any thread count is bit-identical
//! to the serial engine (the golden-trace matrix enforces this).
//!
//! Shutdown is cooperative: a `stop` flag doubles as the gates' cancel
//! signal, set on every exit path (normal completion, leader panic,
//! worker panic) by a drop guard, so no thread is ever left parked.

use crate::engine::{EngineCtx, Hub, ShardedEngine};
use crate::network::{apply_fault, Collector, Network};
use crate::sim::{drive, CycleDriver, RunOutcome, RunSpec};
use chiplet_topo::SystemTopology;
use chiplet_traffic::{PacketRequest, Workload};
use simkit::par::{Gate, PanicSignal};
use simkit::probe::Probe;
use simkit::trace::{TraceEvent, TraceKind, NO_PID};
use simkit::Cycle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// The pool's shared synchronization state: the two phase gates, the
/// cooperative stop flag (doubles as the workers' wait-cancel signal) and
/// the worker-death flag (set by a panicking worker's drop guard so the
/// leader stops waiting for an arrival that will never come).
struct Gates {
    a: Gate,
    b: Gate,
    stop: AtomicBool,
    dead: AtomicBool,
}

impl Gates {
    fn new() -> Self {
        Self {
            a: Gate::new(),
            b: Gate::new(),
            stop: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }
    }
}

/// Leader-side drop guard: whatever way the scope exits — normal return
/// or unwind — set `stop` and open both gates so every parked worker
/// wakes, observes the flag and terminates. Without this, a leader panic
/// (or plain return) would strand workers at a gate forever.
struct StopOnDrop<'a>(&'a Gates);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
        self.0.a.release();
        self.0.b.release();
    }
}

/// Runs the schedule with the cycle loop spread over the engine's shards.
/// The workload and probes never leave the calling thread. A `halt_at`
/// boundary (see [`crate::sim::run_until`]) returns `None` with the pool
/// shut down cleanly and the engine parked at that cycle.
pub(crate) fn run_parallel(
    net: &mut Network,
    workload: &mut dyn Workload,
    spec: RunSpec,
    probes: &mut [&mut dyn Probe],
    halt_at: Option<Cycle>,
) -> Option<RunOutcome> {
    // Split the network into the worker-shared immutable description +
    // engine, and the leader-held mutable hub.
    let Network {
        topo,
        routing,
        config,
        energy_model,
        link_out_port,
        link_in_port,
        outport_links,
        inport_links,
        engine,
        hub,
    } = net;
    let engine: &ShardedEngine = engine;
    let routing: &dyn chiplet_topo::routing::Routing = routing.as_ref();
    let nshards = engine.nshards();
    let gates = Gates::new();
    std::thread::scope(|s| {
        let _stop_guard = StopOnDrop(&gates);
        for sid in 1..nshards {
            let gates = &gates;
            let topo: &RwLock<SystemTopology> = topo;
            let config = &*config;
            let energy_model = &*energy_model;
            let link_out_port = &*link_out_port;
            let link_in_port = &*link_in_port;
            let outport_links = &*outport_links;
            let inport_links = &*inport_links;
            s.spawn(move || {
                let _signal = PanicSignal(&gates.dead);
                loop {
                    gates.a.arrive_and_wait(&gates.stop);
                    if gates.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let t = topo.read().expect("topology lock poisoned");
                    let ctx = EngineCtx {
                        topo: &t,
                        routing,
                        config,
                        energy_model,
                        link_out_port,
                        link_in_port,
                        outport_links,
                        inport_links,
                    };
                    let now = engine.now.load(Ordering::Relaxed);
                    let record_hops = engine.record_hops.load(Ordering::Relaxed);
                    let measure_from = engine.measure_from.load(Ordering::Relaxed);
                    {
                        let store = engine.store.read().expect("store lock poisoned");
                        let mut sh = engine.shards[sid].lock().expect("shard lock poisoned");
                        sh.phase1(&ctx, now, &store, &engine.mail, record_hops, &engine.part);
                    }
                    gates.b.arrive_and_wait(&gates.stop);
                    if gates.stop.load(Ordering::Acquire) {
                        return;
                    }
                    {
                        let store = engine.store.read().expect("store lock poisoned");
                        let mut sh = engine.shards[sid].lock().expect("shard lock poisoned");
                        sh.phase2(&ctx, now, &store, &engine.mail, measure_from, &engine.part);
                    }
                }
            });
        }
        let mut leader = Leader {
            topo,
            routing,
            config,
            energy_model,
            link_out_port,
            link_in_port,
            outport_links,
            inport_links,
            engine,
            hub,
            gates: &gates,
            nworkers: nshards - 1,
        };
        // Establish the invariant every step relies on: all workers
        // parked at gate A before the leader's serial window opens.
        leader.sync(&gates.a);
        drive(&mut leader, workload, spec, probes, halt_at)
        // _stop_guard drops here, waking and terminating the pool; the
        // scope then joins every worker before returning.
    })
}

/// The pool leader: drives shard 0 itself and the barrier protocol for
/// the rest, and runs every serial step (offers, fault script, merge)
/// while the workers are parked.
struct Leader<'a> {
    topo: &'a RwLock<SystemTopology>,
    routing: &'a dyn chiplet_topo::routing::Routing,
    config: &'a crate::config::SimConfig,
    energy_model: &'a crate::energy::EnergyModel,
    link_out_port: &'a [u16],
    link_in_port: &'a [u16],
    outport_links: &'a [Vec<chiplet_topo::LinkId>],
    inport_links: &'a [Vec<chiplet_topo::LinkId>],
    engine: &'a ShardedEngine,
    hub: &'a mut Hub,
    gates: &'a Gates,
    nworkers: usize,
}

impl Leader<'_> {
    /// Waits until every worker is parked at `gate`; unwinds the pool if
    /// a worker died instead (its panic resurfaces when the scope joins).
    fn sync(&self, gate: &Gate) {
        if !gate.wait_arrived(self.nworkers, &self.gates.dead) {
            self.gates.stop.store(true, Ordering::Release);
            self.gates.a.release();
            self.gates.b.release();
            panic!("a shard worker panicked; aborting the parallel run");
        }
    }

    /// Like [`Leader::sync`], but samples how long the leader waited and
    /// records it as a volatile metric and (optionally) a `barrier` trace
    /// event. Only taken when the observability layer asked for it —
    /// the default path never reads the clock. `which` is 0 for the
    /// phase-1→2 gate (B) and 1 for the end-of-cycle gate (A).
    fn sync_observed(&mut self, which: u32, now: Cycle) {
        let gate = if which == 0 {
            &self.gates.b
        } else {
            &self.gates.a
        };
        if !self.hub.observe_barriers {
            return self.sync(gate);
        }
        let t0 = std::time::Instant::now();
        self.sync(gate);
        let dt = t0.elapsed();
        self.hub.barrier_wait_ns += dt.as_nanos() as u64;
        if let Some(ring) = self.hub.trace.as_mut() {
            ring.push(TraceEvent {
                cycle: now,
                kind: TraceKind::Barrier,
                pid: NO_PID,
                a: which,
                b: dt.as_micros().min(u32::MAX as u128) as u32,
            });
        }
    }
}

impl CycleDriver for Leader<'_> {
    fn now(&self) -> Cycle {
        self.engine.now()
    }

    fn offer(&mut self, req: PacketRequest) {
        // Serial window: every worker is parked at gate A.
        self.engine.offer(req);
    }

    fn step_probed(&mut self, probes: &mut [&mut dyn Probe]) {
        while self.hub.script_pos < self.hub.script.events().len()
            && self.hub.script.events()[self.hub.script_pos].at <= self.engine.now()
        {
            let tf = self.hub.script.events()[self.hub.script_pos];
            self.hub.script_pos += 1;
            // Safe to lock every shard: the pool is parked at gate A.
            apply_fault(self.topo, self.routing, self.engine, self.hub, tf, probes);
        }
        let now = self.engine.now.load(Ordering::Relaxed);
        let measure_from = self.engine.measure_from.load(Ordering::Relaxed);
        let record_hops = !probes.is_empty();
        self.engine
            .record_hops
            .store(record_hops, Ordering::Relaxed);
        {
            let t = self.topo.read().expect("topology lock poisoned");
            let ctx = EngineCtx {
                topo: &t,
                routing: self.routing,
                config: self.config,
                energy_model: self.energy_model,
                link_out_port: self.link_out_port,
                link_in_port: self.link_in_port,
                outport_links: self.outport_links,
                inport_links: self.inport_links,
            };
            self.gates.a.release();
            {
                let store = self.engine.store.read().expect("store lock poisoned");
                let mut sh = self.engine.shards[0].lock().expect("shard lock poisoned");
                sh.phase1(
                    &ctx,
                    now,
                    &store,
                    &self.engine.mail,
                    record_hops,
                    &self.engine.part,
                );
            }
            self.sync_observed(0, now);
            self.gates.b.release();
            {
                let store = self.engine.store.read().expect("store lock poisoned");
                let mut sh = self.engine.shards[0].lock().expect("shard lock poisoned");
                sh.phase2(
                    &ctx,
                    now,
                    &store,
                    &self.engine.mail,
                    measure_from,
                    &self.engine.part,
                );
            }
            self.sync_observed(1, now);
        }
        // Serial window again: fold per-shard observations in canonical
        // order and advance the clock.
        if self.engine.merge(self.hub, now, probes) {
            self.hub.last_activity = now;
        }
        self.engine.now.store(now + 1, Ordering::Relaxed);
    }

    fn live_packets(&self) -> usize {
        self.engine.live_packets()
    }

    fn queued_packets(&self) -> usize {
        self.engine.queued_packets()
    }

    fn collector(&self) -> &Collector {
        &self.hub.collector
    }

    fn idle_cycles(&self) -> Cycle {
        self.engine.now() - self.hub.last_activity
    }

    fn faults_active(&self) -> bool {
        self.config.fault.ber_serial > 0.0
            || self.config.fault.ber_parallel > 0.0
            || !self.hub.script.is_empty()
    }

    fn start_measurement(&mut self) {
        self.engine.start_measurement();
        if let Some(ring) = self.hub.trace.as_mut() {
            ring.push(TraceEvent {
                cycle: self.engine.now(),
                kind: TraceKind::Phase,
                pid: NO_PID,
                a: 1, // warm-up → measure
                b: 0,
            });
        }
    }

    fn nodes(&self) -> u32 {
        self.topo
            .read()
            .expect("topology lock poisoned")
            .geometry()
            .nodes()
    }

    fn next_event(&mut self) -> Cycle {
        // Serial window: the pool is parked at gate A, so locking every
        // shard (inside the engine's bound) is free and race-free.
        let now = self.engine.now();
        let mut at = self.engine.next_event(now);
        if let Some(tf) = self.hub.script.events().get(self.hub.script_pos) {
            at = at.min(tf.at.max(now));
        }
        at
    }

    fn tick_idle(&mut self) {
        // Advance the shared clock without releasing the gates: the
        // workers stay parked through the whole skipped stretch and only
        // ever read the clock after a release, so they never observe the
        // intermediate values.
        self.engine.tick_idle();
    }

    fn skip_enabled(&self) -> bool {
        self.config.idle_skip
    }
}

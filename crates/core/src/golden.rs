//! Golden-trace scenarios: the bit-identity contract of the simulator.
//!
//! Every hot-path optimization in this workspace is required to leave
//! simulation results bit-identical. This module pins that contract down
//! as a fixed set of [`Scenario`]s — every network preset at several
//! seeds, plus fault-flavored variants that exercise the retry layer,
//! PHY failover and link-down rerouting — each digested into a plain
//! `key=value` text [`Scenario::digest`]. Floating-point fields are
//! formatted with Rust's shortest round-trip `Display`, so string
//! equality of digests is exactly bit equality of the underlying `f64`s.
//!
//! The digests are committed under `tests/golden/` and checked by the
//! `golden_traces` integration test and by `perf_gate --smoke`. Any
//! drift — a changed result bit on any preset — fails with a per-field
//! diff. Regenerate fixtures with `GOLDEN_BLESS=1 cargo test --test
//! golden_traces` only when a change is *supposed* to alter results.

use crate::config::SimConfig;
use crate::network::Network;
use crate::presets::NetworkKind;
use crate::scheduler::SchedulingProfile;
use crate::sim::{run, run_until, RunOutcome, RunSpec};
use chiplet_fault::{FaultEvent, FaultScript, FaultTarget, TimedFault};
use chiplet_phy::PhyKind;
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::trace::Workload;
use chiplet_traffic::{DnnSpec, PacketRequest, PhaseGraph, SyntheticWorkload, TrafficPattern};
use simkit::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::Cycle;
use std::fmt::Write as _;
use std::path::Path;

/// Every preset in the golden matrix.
pub const ALL_KINDS: [NetworkKind; 7] = [
    NetworkKind::UniformParallelMesh,
    NetworkKind::UniformSerialTorus,
    NetworkKind::HeteroPhyFull,
    NetworkKind::HeteroPhyHalf,
    NetworkKind::UniformSerialHypercube,
    NetworkKind::HeteroChannelFull,
    NetworkKind::HeteroChannelHalf,
];

/// The fixed workload seeds of the golden matrix.
pub const SEEDS: [u64; 3] = [1, 2, 3];

/// Fault flavor of one golden scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Fault machinery fully off.
    Clean,
    /// Serial-wire BER with the CRC/go-back-N retry layer armed, so the
    /// corruption/retransmit/NAK counters are exercised.
    BerRetry,
    /// Hard serial-PHY failure mid-warmup: hetero-PHY links fail over to
    /// the surviving parallel PHY.
    PhyDown,
    /// One interface link pair hard-down mid-warmup and back up later,
    /// exercising runtime rerouting (and route-cache invalidation).
    LinkDown,
}

impl Flavor {
    fn suffix(self) -> &'static str {
        match self {
            Flavor::Clean => "",
            Flavor::BerRetry => "-ber",
            Flavor::PhyDown => "-phydown",
            Flavor::LinkDown => "-linkdown",
        }
    }
}

/// Workload family of one golden scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Open-loop uniform Bernoulli injection (the classic matrix).
    Synthetic,
    /// Dependency-driven DNN training step with a ring all-reduce: a
    /// linear phase DAG whose injection is released by eject feedback.
    DnnRing,
    /// Dependency-driven DNN training step with a tree all-reduce.
    DnnTree,
}

impl WorkloadKind {
    fn suffix(self) -> &'static str {
        match self {
            WorkloadKind::Synthetic => "",
            WorkloadKind::DnnRing => "-dnnring",
            WorkloadKind::DnnTree => "-dnntree",
        }
    }

    /// Whether this is a dependency-driven phase workload (finite DAG,
    /// needs drain-phase polling to finish injecting).
    pub fn is_phase(self) -> bool {
        !matches!(self, WorkloadKind::Synthetic)
    }
}

/// A scenario's workload: the classic synthetic generator or a
/// dependency-driven phase graph, behind one type so the digest paths
/// (including the checkpoint round trip, which needs the workload's own
/// save/load) stay monomorphic over the whole matrix.
#[derive(Debug)]
pub enum GoldenWorkload {
    /// Open-loop synthetic traffic.
    Synthetic(SyntheticWorkload),
    /// Dependency-driven phase DAG.
    Phase(PhaseGraph),
}

impl Workload for GoldenWorkload {
    fn poll(&mut self, now: Cycle, out: &mut Vec<PacketRequest>) {
        match self {
            GoldenWorkload::Synthetic(w) => w.poll(now, out),
            GoldenWorkload::Phase(w) => w.poll(now, out),
        }
    }

    fn done(&self) -> bool {
        match self {
            GoldenWorkload::Synthetic(w) => w.done(),
            GoldenWorkload::Phase(w) => w.done(),
        }
    }

    fn observe(&mut self, now: Cycle, delivered_by_tag: &[u64]) {
        match self {
            GoldenWorkload::Synthetic(w) => w.observe(now, delivered_by_tag),
            GoldenWorkload::Phase(w) => w.observe(now, delivered_by_tag),
        }
    }
}

impl SaveState for GoldenWorkload {
    fn save_state(&self, w: &mut ByteWriter) {
        match self {
            GoldenWorkload::Synthetic(s) => s.save_state(w),
            GoldenWorkload::Phase(s) => s.save_state(w),
        }
    }
}

impl LoadState for GoldenWorkload {
    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        match self {
            GoldenWorkload::Synthetic(s) => s.load_state(r),
            GoldenWorkload::Phase(s) => s.load_state(r),
        }
    }
}

/// One entry of the golden matrix: a preset, a seed, a fault flavor and
/// a workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// The network preset.
    pub kind: NetworkKind,
    /// Workload (and config) seed.
    pub seed: u64,
    /// Fault flavor.
    pub flavor: Flavor,
    /// Workload family.
    pub workload: WorkloadKind,
}

impl Scenario {
    /// Fixture file stem, e.g. `hetero-phy-full-ber-s2` or
    /// `uniform-serial-torus-dnnring-s2`.
    pub fn name(&self) -> String {
        format!(
            "{}{}{}-s{}",
            self.kind.label(),
            self.flavor.suffix(),
            self.workload.suffix(),
            self.seed
        )
    }

    /// Runs the scenario and returns its digest text.
    pub fn digest(&self) -> String {
        self.digest_at_threads(SimConfig::default().shard_threads)
    }

    /// Runs the scenario pinned to `threads` shard threads and returns
    /// its digest text. The bit-identity contract says this is the same
    /// string for every thread count — the `golden_traces` thread-matrix
    /// test checks all fixtures at 1, 2, 4 and 8.
    pub fn digest_at_threads(&self, threads: usize) -> String {
        self.digest_inner(threads, false)
    }

    /// Like [`Scenario::digest_at_threads`], but with the full
    /// observability layer armed — metrics registry and an unfiltered
    /// trace ring — before the run. The zero-cost contract says the
    /// digest is *still* the same string: observation must never feed
    /// back into simulation. The `golden_traces` instrumented matrix
    /// checks every fixture this way at 1 and 4 threads.
    pub fn digest_instrumented_at_threads(&self, threads: usize) -> String {
        self.digest_inner(threads, true)
    }

    /// Builds the scenario's network, pinned to `threads` shard threads,
    /// with its fault script installed and (optionally) the full
    /// observability layer armed.
    pub fn build_net(&self, threads: usize, instrument: bool) -> Network {
        let geom = Geometry::new(2, 2, 2, 2);
        let mut config = SimConfig::default()
            .with_seed(self.seed)
            .with_shard_threads(threads);
        if self.flavor == Flavor::BerRetry {
            config = config.with_ber(1e-4).with_retry();
        }
        let mut net = self.kind.build(geom, config, SchedulingProfile::balanced());
        match self.flavor {
            Flavor::Clean | Flavor::BerRetry => {}
            Flavor::PhyDown => {
                net.set_fault_script(FaultScript::single_phy_failure(400, PhyKind::Serial));
            }
            Flavor::LinkDown => {
                // The first non-on-chip link (and its reverse pair, taken
                // along automatically): down during the window, back up
                // for the drain.
                let link = net
                    .topology()
                    .links()
                    .iter()
                    .find(|l| l.class.is_interface())
                    .map(|l| l.id.0)
                    .expect("every preset has interface links");
                net.set_fault_script(FaultScript::new(vec![
                    TimedFault {
                        at: 400,
                        target: FaultTarget::Link(link),
                        event: FaultEvent::LinkDown,
                    },
                    TimedFault {
                        at: 1100,
                        target: FaultTarget::Link(link),
                        event: FaultEvent::LinkUp,
                    },
                ]));
            }
        }
        if instrument {
            net.enable_metrics();
            net.enable_trace(4096, simkit::TraceFilter::all());
        }
        net
    }

    /// The scenario's fixed workload.
    pub fn workload(&self) -> GoldenWorkload {
        let geom = Geometry::new(2, 2, 2, 2);
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        match self.workload {
            WorkloadKind::Synthetic => GoldenWorkload::Synthetic(SyntheticWorkload::new(
                nodes,
                TrafficPattern::Uniform,
                0.12,
                16,
                self.seed,
            )),
            // The phase workloads are deterministic DAGs — the seed only
            // feeds the config (fault RNG) — so the specs are fixed:
            // small enough to drain inside the smoke schedule on the
            // slowest (serial-torus) preset, long enough to straddle the
            // checkpoint matrix's halt point at cycle 700.
            WorkloadKind::DnnRing => {
                let spec =
                    DnnSpec::parse("ranks=8,layers=2,fwd=32,grad=128,compute=16,allreduce=ring")
                        .expect("golden dnn-ring spec parses");
                GoldenWorkload::Phase(PhaseGraph::dnn(&spec, &nodes))
            }
            WorkloadKind::DnnTree => {
                let spec =
                    DnnSpec::parse("ranks=8,layers=2,fwd=32,grad=96,compute=24,allreduce=tree")
                        .expect("golden dnn-tree spec parses");
                GoldenWorkload::Phase(PhaseGraph::dnn(&spec, &nodes))
            }
        }
    }

    /// The run schedule for this scenario: phase workloads keep offering
    /// packets during the drain phase (the DAG releases trailing phases
    /// only after earlier ejections), synthetic ones stop at measure end.
    pub fn runspec(&self) -> RunSpec {
        if self.workload.is_phase() {
            RunSpec::smoke().with_drain_offers()
        } else {
            RunSpec::smoke()
        }
    }

    fn digest_inner(&self, threads: usize, instrument: bool) -> String {
        let mut net = self.build_net(threads, instrument);
        let mut workload = self.workload();
        let out = run(&mut net, &mut workload, self.runspec());
        render_digest(&out, &net)
    }

    /// Like [`Scenario::digest_at_threads`], but the run is halted at
    /// cycle `halt`, checkpointed ([`Network::checkpoint`]), restored
    /// into a *freshly built* network pinned to `restore_threads` shard
    /// threads (the workload round-trips through its own save/load), and
    /// resumed to completion. The checkpoint bit-identity contract says
    /// this digest is string-equal to the uninterrupted one — the
    /// `checkpoint_matrix` integration test pins all fixtures this way.
    pub fn digest_checkpointed(
        &self,
        halt: Cycle,
        save_threads: usize,
        restore_threads: usize,
        instrument: bool,
    ) -> String {
        let mut net = self.build_net(save_threads, instrument);
        let mut workload = self.workload();
        let halted = run_until(&mut net, &mut workload, self.runspec(), halt);
        assert!(
            halted.is_none(),
            "golden scenarios must reach the halt point at cycle {halt}"
        );
        let blob = net.checkpoint();
        let mut wblob = ByteWriter::new();
        workload.save_state(&mut wblob);
        let wblob = wblob.into_bytes();

        let mut net = self.build_net(restore_threads, instrument);
        let mut workload = self.workload();
        net.restore(&blob)
            .expect("a checkpoint restores into an identically-configured network");
        workload
            .load_state(&mut ByteReader::new(&wblob))
            .expect("the workload blob round-trips");
        let out = run(&mut net, &mut workload, self.runspec());
        render_digest(&out, &net)
    }
}

/// Formats a completed run into the digest text (see [`Scenario::digest`]).
fn render_digest(out: &RunOutcome, net: &Network) -> String {
    let r = &out.results;
    let c = net.collector();
    let mut s = String::new();
    let mut kv = |k: &str, v: String| {
        let _ = writeln!(s, "{k}={v}");
    };
    kv("drained", out.drained.to_string());
    kv("deadlocked", out.deadlocked.to_string());
    kv("fault_stalled", out.fault_stalled.to_string());
    kv("nodes", r.nodes.to_string());
    kv("cycles", r.cycles.to_string());
    kv("packets", r.packets.to_string());
    kv("avg_latency", r.avg_latency.to_string());
    kv("latency_std", r.latency_std.to_string());
    kv("max_latency", r.max_latency.to_string());
    kv("p50_latency", r.p50_latency.to_string());
    kv("p99_latency", r.p99_latency.to_string());
    kv("avg_net_latency", r.avg_net_latency.to_string());
    kv("avg_high_latency", r.avg_high_latency.to_string());
    kv("max_high_latency", r.max_high_latency.to_string());
    kv("avg_hops", r.avg_hops.to_string());
    kv("throughput", r.throughput.to_string());
    kv("avg_energy_pj", r.avg_energy_pj.to_string());
    kv("avg_onchip_pj", r.avg_onchip_pj.to_string());
    kv("avg_parallel_pj", r.avg_parallel_pj.to_string());
    kv("avg_serial_pj", r.avg_serial_pj.to_string());
    kv("locked_fraction", r.locked_fraction.to_string());
    kv("backlog", r.backlog.to_string());
    kv("corrupted_flits", r.corrupted_flits.to_string());
    kv("retransmitted_flits", r.retransmitted_flits.to_string());
    kv("failovers", r.failovers.to_string());
    kv("delivered_packets", c.delivered_packets.to_string());
    kv("delivered_flits", c.delivered_flits.to_string());
    kv("retry_naks", c.retry_naks.to_string());
    kv("retry_timeouts", c.retry_timeouts.to_string());
    kv("faults_applied", c.faults_applied.to_string());
    // Per-phase attribution, only for tagged (phase-workload) runs, so
    // the classic fixtures are byte-for-byte what they always were. The
    // full per-tag vector is pinned: any drift in how a single phase's
    // latency or energy is attributed fails the fixture.
    if !c.by_tag.is_empty() {
        kv("phase_tags", (c.by_tag.len() - 1).to_string());
        for (tag, t) in c.by_tag.iter().enumerate().skip(1) {
            kv(
                &format!("phase{tag}"),
                format!(
                    "delivered={} packets={} flits={} latency={} energy={} hops={}",
                    t.delivered, t.packets, t.flits, t.latency_cycles, t.energy_pj, t.flit_hops
                ),
            );
        }
    }
    s
}

/// The full golden matrix: every preset × every seed, clean, plus
/// fault-flavored variants on the presets whose machinery they exercise,
/// plus dependency-driven phase-workload scenarios.
pub fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    for kind in ALL_KINDS {
        for seed in SEEDS {
            v.push(Scenario {
                kind,
                seed,
                flavor: Flavor::Clean,
                workload: WorkloadKind::Synthetic,
            });
        }
    }
    for seed in SEEDS {
        v.push(Scenario {
            kind: NetworkKind::HeteroPhyFull,
            seed,
            flavor: Flavor::BerRetry,
            workload: WorkloadKind::Synthetic,
        });
        v.push(Scenario {
            kind: NetworkKind::HeteroPhyFull,
            seed,
            flavor: Flavor::PhyDown,
            workload: WorkloadKind::Synthetic,
        });
        v.push(Scenario {
            kind: NetworkKind::UniformSerialTorus,
            seed,
            flavor: Flavor::LinkDown,
            workload: WorkloadKind::Synthetic,
        });
    }
    // Dependency-driven phase workloads: the chiplet-mapped DNN training
    // step on contrasting presets (ring and tree all-reduce), plus one
    // retry-flavored variant so phase release is pinned under BER jitter
    // too. These ride the same thread/instrumentation/checkpoint
    // matrices as every other fixture.
    for (kind, seed, workload) in [
        (NetworkKind::HeteroPhyFull, 1, WorkloadKind::DnnRing),
        (NetworkKind::UniformSerialTorus, 2, WorkloadKind::DnnRing),
        (NetworkKind::HeteroChannelFull, 1, WorkloadKind::DnnTree),
        (NetworkKind::UniformParallelMesh, 3, WorkloadKind::DnnTree),
    ] {
        v.push(Scenario {
            kind,
            seed,
            flavor: Flavor::Clean,
            workload,
        });
    }
    v.push(Scenario {
        kind: NetworkKind::HeteroPhyFull,
        seed: 1,
        flavor: Flavor::BerRetry,
        workload: WorkloadKind::DnnRing,
    });
    v
}

/// Compares one freshly computed digest against its fixture text,
/// returning a readable per-field diff (`None` when identical).
pub fn diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let parse = |text: &str| -> Vec<(String, String)> {
        text.lines()
            .filter_map(|l| l.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    };
    let exp = parse(expected);
    let act = parse(actual);
    let mut out = String::new();
    for (k, ev) in &exp {
        match act.iter().find(|(ak, _)| ak == k) {
            Some((_, av)) if av == ev => {}
            Some((_, av)) => {
                let _ = writeln!(out, "  {k}: expected {ev}, got {av}");
            }
            None => {
                let _ = writeln!(out, "  {k}: expected {ev}, missing from actual");
            }
        }
    }
    for (k, av) in &act {
        if !exp.iter().any(|(ek, _)| ek == k) {
            let _ = writeln!(out, "  {k}: unexpected field (got {av})");
        }
    }
    if out.is_empty() {
        // Same fields, different ordering or formatting.
        out.push_str("  digests differ in formatting/ordering\n");
    }
    Some(out)
}

/// Checks every scenario against the fixtures in `dir`. Returns the
/// number of scenarios checked, or a readable multi-scenario report of
/// every mismatch / missing fixture.
pub fn check_dir(dir: &Path) -> Result<usize, String> {
    let mut failures = String::new();
    let all = scenarios();
    for sc in &all {
        let name = sc.name();
        let path = dir.join(format!("{name}.txt"));
        let expected = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                let _ = writeln!(
                    failures,
                    "{name}: cannot read fixture {}: {e}\n  (run with GOLDEN_BLESS=1 to create it)",
                    path.display()
                );
                continue;
            }
        };
        let actual = sc.digest();
        if let Some(d) = diff(&expected, &actual) {
            let _ = writeln!(failures, "{name}: golden trace drifted:\n{d}");
        }
    }
    if failures.is_empty() {
        Ok(all.len())
    } else {
        Err(failures)
    }
}

/// Regenerates every fixture in `dir` from the current code. Returns the
/// number written.
pub fn bless_dir(dir: &Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let all = scenarios();
    for sc in &all {
        std::fs::write(dir.join(format!("{}.txt", sc.name())), sc.digest())?;
    }
    Ok(all.len())
}

/// The committed fixture directory, resolved from this crate's manifest
/// (`<workspace>/tests/golden`).
pub fn default_fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/golden")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_reproducible() {
        let sc = Scenario {
            kind: NetworkKind::UniformParallelMesh,
            seed: 1,
            flavor: Flavor::Clean,
            workload: WorkloadKind::Synthetic,
        };
        assert_eq!(sc.digest(), sc.digest());
    }

    #[test]
    fn phase_digests_are_reproducible_and_attributed() {
        let sc = Scenario {
            kind: NetworkKind::UniformParallelMesh,
            seed: 1,
            flavor: Flavor::Clean,
            workload: WorkloadKind::DnnRing,
        };
        let d = sc.digest();
        assert_eq!(d, sc.digest());
        assert!(d.contains("drained=true"), "phase run must drain:\n{d}");
        assert!(
            d.contains("phase_tags="),
            "phase digest carries attribution:\n{d}"
        );
    }

    #[test]
    fn diff_reports_the_changed_field() {
        let a = "x=1\ny=2\n";
        let b = "x=1\ny=3\n";
        assert!(diff(a, a).is_none());
        let d = diff(a, b).expect("differs");
        assert!(d.contains("y: expected 2, got 3"), "{d}");
    }

    #[test]
    fn scenario_names_are_unique() {
        let mut names: Vec<String> = scenarios().iter().map(|s| s.name()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}

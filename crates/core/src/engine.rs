//! The sharded per-cycle simulation engine.
//!
//! [`ShardedEngine`] owns every mutable piece of a running simulation,
//! split across per-chiplet-group [`Shard`]s (see [`crate::shard`]). Each
//! cycle advances through the same four named stages the original serial
//! engine ran — credits → media → inject → route — but grouped into two
//! phases per shard with a synchronization point between them:
//!
//! 1. **Phase 1** (credits + media): every shard advances its owned
//!    credit lines and link media. Flits arriving at a router owned by
//!    another shard are posted to that shard's mailbox.
//! 2. **Phase 2** (inject + route): every shard drains its inbound flit
//!    mailbox into its routers, then runs its NICs and router pipelines.
//!    Credits for other shards' links are posted back through the credit
//!    mailbox, replayed at the top of the next cycle's phase 1.
//! 3. **Merge**: the orchestrator folds every shard's buffered
//!    observations (deliveries, link events, flit hops) into the
//!    [`Collector`] and attached probes in a canonical order, frees
//!    delivered packet descriptors, and advances the clock.
//!
//! With one shard this degenerates to exactly the serial staged engine.
//! With many shards the phases can run on a worker pool (see
//! [`crate::parallel`]); [`ShardedEngine::step_serial`] runs them on the
//! calling thread. Either way the observable results are bit-identical:
//! the golden-trace matrix pins SimResults equality across every shard
//! and thread count.
//!
//! The immutable description of the system (topology, routing, port maps,
//! configuration) stays in [`crate::network::Network`] and is passed into
//! each stage as an [`EngineCtx`].

use crate::config::SimConfig;
use crate::energy::EnergyModel;
use crate::network::Collector;
use crate::shard::{Delivery, FaultCore, Mail, Medium, MetricIds, Partition, Shard, ShardMetrics};
use chiplet_fault::FaultScript;
use chiplet_noc::{CreditLine, PacketId, PacketInfo, PacketStore, Router};
use chiplet_topo::routing::Routing;
use chiplet_topo::{LinkId, SystemTopology};
use chiplet_traffic::PacketRequest;
use simkit::metrics::{MetricsRegistry, MetricsSnapshot};
use simkit::probe::{LinkEvent, Probe};
use simkit::trace::{TraceBuf, TraceEvent, TraceFilter, TraceRing, Tracer};
use simkit::Cycle;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, RwLock};

/// The immutable system description a stage executes against, borrowed
/// from the owning [`crate::network::Network`].
pub(crate) struct EngineCtx<'a> {
    /// The system topology.
    pub topo: &'a SystemTopology,
    /// The routing algorithm.
    pub routing: &'a dyn Routing,
    /// The simulation configuration.
    pub config: &'a SimConfig,
    /// The energy model applied at packet ejection.
    pub energy_model: &'a EnergyModel,
    /// LinkId → out port on its source router (1-based).
    pub link_out_port: &'a [u16],
    /// LinkId → in port on its destination router (1-based).
    pub link_in_port: &'a [u16],
    /// node → ordered outgoing links (out port k+1 = element k).
    pub outport_links: &'a [Vec<LinkId>],
    /// node → ordered incoming links (in port k+1 = element k).
    pub inport_links: &'a [Vec<LinkId>],
}

/// Orchestrator-side mutable state: everything that is only ever touched
/// while the shards are at rest — the statistics collector, the fault
/// script cursor, the activity clock and the pooled merge scratch.
///
/// Splitting this out of the engine is what lets the parallel driver hand
/// the [`ShardedEngine`] to the worker pool by shared reference while the
/// leader keeps exclusive access to the serial bookkeeping.
#[derive(Debug)]
pub(crate) struct Hub {
    /// The built-in statistics collector.
    pub collector: Collector,
    /// Last cycle in which any shard reported activity.
    pub last_activity: Cycle,
    /// Scheduled fault events, applied as simulated time passes them.
    pub script: FaultScript,
    /// Next unapplied script event.
    pub script_pos: usize,
    /// Pooled scratch for fault application: targeted links and the link
    /// events they emitted. Kept across calls so fault storms (BER
    /// scripts fire repeatedly) do not allocate.
    pub fault_links: Vec<LinkId>,
    pub fault_emitted: Vec<(u32, LinkEvent)>,
    /// Merge scratch: link events as `(link, per-shard seq, event)`.
    ev_scratch: Vec<(u32, u32, LinkEvent)>,
    /// Merge scratch: flit hops as `(link, per-shard seq, is_head)`.
    hop_scratch: Vec<(u32, u32, bool)>,
    /// Merge scratch: deliveries as `(per-shard seq, delivery)`.
    del_scratch: Vec<(u32, Delivery)>,
    /// The bounded trace store (`None` unless tracing is enabled).
    /// Shard buffers are folded in here every merge in canonical
    /// stable-by-key order; hub-side events (faults, phase changes,
    /// barrier waits) are pushed directly.
    pub trace: Option<TraceRing>,
    /// Merge scratch: trace events as `(merge key, event)`, used only
    /// when more than one shard contributes (the single-shard path sorts
    /// the shard's own buffer in place).
    trace_scratch: Vec<(u64, TraceEvent)>,
    /// The metrics catalog (`None` unless metrics are enabled). The
    /// per-shard cell slices live inside the shards; snapshots fold them
    /// through this registry.
    pub metrics: Option<MetricsRegistry>,
    /// Leader wall-time spent parked at the phase barriers, nanoseconds,
    /// summed over the run. Wall-clock and thread-count dependent, hence
    /// exported as a volatile metric only.
    pub barrier_wait_ns: u64,
    /// Whether the parallel leader samples barrier wait times (set when
    /// metrics or barrier tracing are on; the serial path ignores it).
    pub observe_barriers: bool,
}

impl Hub {
    pub fn new() -> Self {
        Self {
            collector: Collector::default(),
            last_activity: 0,
            script: FaultScript::default(),
            script_pos: 0,
            fault_links: Vec::new(),
            fault_emitted: Vec::new(),
            ev_scratch: Vec::new(),
            hop_scratch: Vec::new(),
            del_scratch: Vec::new(),
            trace: None,
            trace_scratch: Vec::new(),
            metrics: None,
            barrier_wait_ns: 0,
            observe_barriers: false,
        }
    }
}

/// All mutable simulation state, partitioned into shards.
///
/// Interior mutability is layered for the two drivers: the serial path
/// (`step_serial`) goes through `Mutex::get_mut`/`RwLock::get_mut` and
/// pays no synchronization at all; the parallel path hands `&Self` to the
/// worker pool, where each worker locks exactly its own shard (never
/// contended — shard ownership is static) and reads the store through the
/// `RwLock` (writes happen only in the merge, while workers are parked).
pub(crate) struct ShardedEngine {
    /// The static shard layout.
    pub part: Partition,
    /// One shard per partition slot; `shards[s]` is only ever locked by
    /// the worker driving shard `s` (or the orchestrator while the pool
    /// is parked).
    pub shards: Vec<Mutex<Shard>>,
    /// Packet descriptors, shared read-mostly across shards during a
    /// cycle; allocation (offers) and freeing (merge) happen between
    /// phases under the write lock.
    pub store: RwLock<PacketStore>,
    /// Cross-shard flit and credit mailboxes.
    pub mail: Mail,
    /// The current cycle.
    pub now: AtomicU64,
    /// Packets created at or after this cycle count toward the measured
    /// statistics (warm-up exclusion).
    pub measure_from: AtomicU64,
    /// Whether media stages record per-flit hop observations (only when
    /// probes are attached; reread by workers every cycle).
    pub record_hops: AtomicBool,
}

impl ShardedEngine {
    /// Distributes the assembled components over `part`'s shards.
    ///
    /// Every shard gets full-length vectors: routers it does not own are
    /// replaced by portless stubs (never activated), media and credit
    /// lines it does not own by `None`. Each shard also builds the *full*
    /// fault core from the same seed — RNG streams are forked by global
    /// link id, so every shard derives the identical stream set and only
    /// the owner of a link ever draws from it. That makes fault draws
    /// independent of the partition, which the golden bit-identity
    /// contract requires.
    pub fn new(
        routers: Vec<Router>,
        media: Vec<Medium>,
        credit_lines: Vec<CreditLine>,
        link_ps: &[f64],
        seed: u64,
        part: Partition,
    ) -> Self {
        let n = routers.len();
        let links = media.len();
        let ns = part.nshards as usize;
        let mut shards: Vec<Shard> = (0..ns)
            .map(|sid| {
                Shard::new(
                    sid as u16,
                    part.shard_nodes[sid].clone(),
                    n,
                    links,
                    ns,
                    FaultCore::new(link_ps, seed),
                )
            })
            .collect();
        for (i, r) in routers.into_iter().enumerate() {
            shards[part.node_shard[i] as usize].routers[i] = r;
        }
        for (li, m) in media.into_iter().enumerate() {
            shards[part.link_owner[li] as usize].media[li] = Some(m);
        }
        for (li, c) in credit_lines.into_iter().enumerate() {
            shards[part.link_owner[li] as usize].credit_lines[li] = Some(c);
        }
        Self {
            shards: shards.into_iter().map(Mutex::new).collect(),
            store: RwLock::new(PacketStore::new()),
            mail: Mail::new(ns),
            now: AtomicU64::new(0),
            measure_from: AtomicU64::new(0),
            record_hops: AtomicBool::new(false),
            part,
        }
    }

    /// Warms every shard's route table for the nodes it owns (scoped
    /// prefill: a shard only ever looks up routes whose current node is
    /// one of its routers).
    pub fn prefill_route_tables(&mut self, routing: &dyn Routing, topo: &SystemTopology) {
        for s in &mut self.shards {
            let sh = s.get_mut().expect("shard lock poisoned");
            sh.route_table.prefill_scoped(routing, topo, &sh.nodes);
        }
    }

    /// The shard count this engine was partitioned into.
    pub fn nshards(&self) -> usize {
        self.part.nshards as usize
    }

    pub fn now(&self) -> Cycle {
        self.now.load(Relaxed)
    }

    /// Advances the clock one cycle without running the phases (idle-skip:
    /// the caller proved the cycle would be a no-op via
    /// [`Self::next_event`]). Called only between cycles.
    pub fn tick_idle(&self) {
        self.now.fetch_add(1, Relaxed);
    }

    pub fn start_measurement(&self) {
        self.measure_from.store(self.now.load(Relaxed), Relaxed);
    }

    /// Queues a packet for injection at its source NIC. Called only
    /// between cycles (never while a phase is running).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or a node id is out of range.
    pub fn offer(&self, req: PacketRequest) -> PacketId {
        assert_ne!(req.src, req.dst, "self-addressed packet");
        let now = self.now.load(Relaxed);
        let pid = self.store.write().expect("store lock poisoned").alloc(
            PacketInfo::new(req.src, req.dst, req.len, req.class, req.priority, now)
                .with_tag(req.tag),
        );
        let src = req.src.index();
        let mut sh = self.shards[self.part.node_shard[src] as usize]
            .lock()
            .expect("shard lock poisoned");
        sh.nics[src].queue.push_back(pid);
        sh.active_nics.insert(src);
        pid
    }

    pub fn live_packets(&self) -> usize {
        self.store.read().expect("store lock poisoned").live()
    }

    /// Total packets waiting in source queues (not yet fully injected).
    pub fn queued_packets(&self) -> usize {
        // Unowned NIC slots are empty defaults, so summing every shard's
        // full vector counts each node exactly once.
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shard lock poisoned")
                    .nics
                    .iter()
                    .map(|nic| nic.pending())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Flits delivered over each directed link so far (summed across
    /// shards; a link's counter only ever grows in its owner).
    pub fn link_flits(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for s in &self.shards {
            let sh = s.lock().expect("shard lock poisoned");
            if out.is_empty() {
                out = sh.link_flits.clone();
            } else {
                for (acc, v) in out.iter_mut().zip(&sh.link_flits) {
                    *acc += v;
                }
            }
        }
        out
    }

    /// In-flight flits across every shard arena (leak checks: a drained
    /// network holds zero).
    pub fn flits_in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").arena.in_flight())
            .sum()
    }

    /// Total flit handles ever allocated, summed across shard arenas.
    pub fn flits_allocated_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shard lock poisoned")
                    .arena
                    .allocated_total()
            })
            .sum()
    }

    /// The earliest cycle ≥ `now` at which any shard can make progress,
    /// or [`Cycle::MAX`] if the whole engine is drained.
    ///
    /// A non-empty mailbox pins the bound to `now`: posted flits are
    /// delivered at the top of the next phase 2 and posted credits are
    /// replayed next phase 1, both of which count as work. Otherwise the
    /// bound is the minimum over the shards' own [`Shard::next_event`]
    /// bounds. Called only between cycles (shards at rest), like
    /// [`Self::merge`].
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if !self.mail.flits.is_empty() || !self.mail.credits.is_empty() {
            return now;
        }
        let mut at = Cycle::MAX;
        for s in &self.shards {
            let sh = s.lock().expect("shard lock poisoned");
            at = at.min(sh.next_event(now));
            if at <= now {
                return now;
            }
        }
        at
    }

    /// Cycles in which each shard moved something (per-shard activity
    /// accounting; the deadlock watchdog ORs the same per-cycle flags).
    pub fn shard_active_cycles(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").active_cycles)
            .collect()
    }

    /// Runs one simulation cycle on the calling thread: both phases over
    /// every shard in order, then the merge. Uses `get_mut` throughout,
    /// so the serial path pays nothing for the locks.
    pub fn step_serial(
        &mut self,
        ctx: &EngineCtx<'_>,
        hub: &mut Hub,
        probes: &mut [&mut dyn Probe],
    ) {
        let now = self.now.load(Relaxed);
        let record_hops = !probes.is_empty();
        let measure_from = self.measure_from.load(Relaxed);
        let ns = self.part.nshards as usize;
        {
            let store = &*self.store.get_mut().expect("store lock poisoned");
            for sid in 0..ns {
                let sh = self.shards[sid].get_mut().expect("shard lock poisoned");
                sh.phase1(ctx, now, store, &self.mail, record_hops, &self.part);
            }
            for sid in 0..ns {
                let sh = self.shards[sid].get_mut().expect("shard lock poisoned");
                sh.phase2(ctx, now, store, &self.mail, measure_from, &self.part);
            }
        }
        if self.merge(hub, now, probes) {
            hub.last_activity = now;
        }
        self.now.store(now + 1, Relaxed);
    }

    /// Folds every shard's buffered observations into the collector and
    /// probes, frees delivered descriptors, and clears the buffers.
    /// Returns whether any shard reported activity this cycle.
    ///
    /// Runs with every shard at rest (between cycles). The merge order is
    /// canonical — ascending link id for link events and hops, ascending
    /// destination node for deliveries, each tie-broken by the producing
    /// shard's emission sequence — which is exactly the serial engine's
    /// emission order, independent of shard count and worker scheduling.
    /// Freeing descriptors in that same order keeps the store's slot
    /// freelist (and therefore future [`PacketId`] assignment)
    /// bit-identical to the serial engine.
    pub fn merge(&self, hub: &mut Hub, now: Cycle, probes: &mut [&mut dyn Probe]) -> bool {
        let mut guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned"))
            .collect();
        hub.ev_scratch.clear();
        hub.hop_scratch.clear();
        hub.del_scratch.clear();
        for g in guards.iter() {
            for (seq, &(li, ev)) in g.link_events.iter().enumerate() {
                hub.ev_scratch.push((li, seq as u32, ev));
            }
            for (seq, &(li, head)) in g.flit_hops.iter().enumerate() {
                hub.hop_scratch.push((li, seq as u32, head));
            }
            for (seq, d) in g.deliveries.iter().enumerate() {
                hub.del_scratch.push((seq as u32, *d));
            }
        }
        hub.ev_scratch
            .sort_unstable_by_key(|&(li, seq, _)| (li, seq));
        hub.hop_scratch
            .sort_unstable_by_key(|&(li, seq, _)| (li, seq));
        hub.del_scratch
            .sort_unstable_by_key(|&(seq, d)| (d.node, seq));
        for &(li, _, ev) in hub.ev_scratch.iter() {
            hub.collector.on_link_event(now, li, ev);
            for p in probes.iter_mut() {
                p.on_link_event(now, li, ev);
            }
        }
        for &(li, _, head) in hub.hop_scratch.iter() {
            for p in probes.iter_mut() {
                p.on_flit_hop(now, li, head);
            }
        }
        if !hub.del_scratch.is_empty() {
            let mut store = self.store.write().expect("store lock poisoned");
            for &(_, d) in hub.del_scratch.iter() {
                hub.collector.on_packet_delivered(&d.ev);
                for p in probes.iter_mut() {
                    p.on_packet_delivered(&d.ev);
                }
                store.free(d.pid);
            }
        }
        if let Some(ring) = hub.trace.as_mut() {
            // A *stable* sort by key reproduces the serial emission
            // order: the key's lane bit puts phase-1 (link) events
            // before phase-2 (node) events, and per key all events come
            // from the one owning shard, whose buffer holds them in
            // program order — which stability preserves. The sort is
            // also the reason this path is affordable with a full
            // unfiltered ring: the per-cycle stream is a concatenation
            // of a few ascending runs (each emission loop walks ids in
            // order), which the stable run-detecting sort merges in
            // near-linear time where a pattern-defeating unstable sort
            // pays full n·log n.
            if let [g] = &mut guards[..] {
                // Single shard: sort its buffer in place — it is cleared
                // below anyway — and skip the scratch copy entirely.
                if let Tracer::On(buf) = &mut g.tracer {
                    buf.events.sort_by_key(|&(key, _)| key);
                    ring.extend_prefiltered(&buf.events);
                }
            } else {
                hub.trace_scratch.clear();
                for g in guards.iter() {
                    if let Tracer::On(buf) = &g.tracer {
                        hub.trace_scratch.extend_from_slice(&buf.events);
                    }
                }
                hub.trace_scratch.sort_by_key(|&(key, _)| key);
                ring.extend_prefiltered(&hub.trace_scratch);
            }
        }
        let mut any = false;
        for g in guards.iter_mut() {
            if g.activity {
                any = true;
                g.active_cycles += 1;
            }
            g.link_events.clear();
            g.flit_hops.clear();
            g.deliveries.clear();
            g.tracer.clear();
        }
        any
    }

    /// Turns tracing on in every shard: each gets a fresh buffer bound to
    /// `filter`. Call between runs, never mid-cycle.
    pub fn set_tracing(&mut self, filter: TraceFilter) {
        for s in &mut self.shards {
            let sh = s.get_mut().expect("shard lock poisoned");
            sh.tracer = Tracer::On(TraceBuf::new(filter));
        }
    }

    /// Installs hot-path metric cells in every shard: a shared id map and
    /// a private zeroed slice from `reg`.
    pub fn set_metrics(&mut self, ids: &MetricIds, reg: &MetricsRegistry) {
        for s in &mut self.shards {
            let sh = s.get_mut().expect("shard lock poisoned");
            sh.metrics = Some(ShardMetrics {
                ids: ids.clone(),
                slice: reg.slice(),
            });
        }
    }

    /// Folds every shard's metric slice (ascending shard order) through
    /// `reg` into a snapshot. Shards without metrics contribute nothing.
    pub fn fold_shard_metrics(&self, reg: &MetricsRegistry) -> MetricsSnapshot {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned"))
            .collect();
        reg.fold(
            guards
                .iter()
                .filter_map(|g| g.metrics.as_ref().map(|m| &m.slice)),
        )
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("now", &self.now.load(Relaxed))
            .field("shards", &self.part.nshards)
            .finish()
    }
}

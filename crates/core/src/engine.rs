//! The staged per-cycle simulation engine.
//!
//! [`Engine`] owns every mutable piece of a running simulation — routers,
//! media, credit lines, NICs, the packet store, the statistics collector —
//! and advances them one cycle at a time through four named stages:
//!
//! 1. [`Engine::stage_credits`] — credits that completed their return trip
//!    are restored to the transmitting router;
//! 2. [`Engine::stage_media`] — media deliver arrived flits into input
//!    buffers (hetero-PHY adapters also run their dispatch/reorder
//!    stages), notifying flit-hop probes;
//! 3. [`Engine::stage_inject`] — NICs stream queued packets into injection
//!    ports;
//! 4. [`Engine::stage_route`] — every active router runs its RC/VA/SA
//!    pipeline, transmitting flits into the media and returning credits
//!    upstream; ejected packets are reported to the collector and probes.
//!
//! Each component class sits behind an [`ActiveSet`]: a router, medium,
//! credit line or NIC is stepped only while it has work, and events that
//! give an idle component work (a send, a credit, a delivery, an offer)
//! re-activate it. Sets iterate in ascending index order — the same order
//! as the polling loops they replaced — so skipping idle components is
//! results-invisible: a run produces bit-identical statistics with the
//! scheduler on a fully-loaded or a nearly-idle network.
//!
//! The immutable description of the system (topology, routing, port maps,
//! configuration) stays in [`crate::network::Network`] and is passed into
//! each stage as an [`EngineCtx`].

use crate::config::SimConfig;
use crate::energy::{EnergyModel, PacketEnergy};
use crate::network::Collector;
use chiplet_noc::{
    CreditLine, DelayLine, Flit, FlitArena, FlitRef, PacketId, PacketInfo, PacketStore,
    PortCandidate, RetryLine, Router, RouterEnv,
};
use chiplet_phy::{HeteroPhyLink, PhyKind};
use chiplet_topo::routing::{RouteTable, Routing};
use chiplet_topo::{LinkClass, LinkId, NodeId, SystemTopology};
use chiplet_traffic::PacketRequest;
use simkit::probe::{DeliveryEvent, LinkEvent, Probe};
use simkit::{ActiveSet, Cycle, SimRng};
use std::collections::VecDeque;

/// One directed link's physical medium.
#[derive(Debug)]
pub(crate) enum Medium {
    /// A plain fixed-latency pipeline (on-chip, parallel or serial link).
    Plain {
        /// The flit pipeline (carrying arena handles).
        line: DelayLine<FlitRef>,
        /// The link class (for per-class energy accounting).
        class: LinkClass,
    },
    /// A plain pipeline wrapped in the CRC/replay retry link layer (built
    /// for interface links when the fault model is armed; error-free it is
    /// cycle-for-cycle identical to [`Medium::Plain`]).
    Guarded {
        /// The retrying flit pipeline.
        line: RetryLine,
        /// The link class (for per-class energy accounting).
        class: LinkClass,
    },
    /// A hetero-PHY adapter (parallel + serial PHYs with scheduling).
    Hetero(Box<HeteroPhyLink>),
}

impl Medium {
    fn in_flight(&self) -> usize {
        match self {
            Medium::Plain { line, .. } => line.in_flight(),
            Medium::Guarded { line, .. } => line.in_flight(),
            Medium::Hetero(h) => h.in_flight(),
        }
    }
}

/// Per-link fault-injection state: one RNG stream and corruption
/// probability per directed link, plus the mutable fault flags scripted
/// events toggle (blocked links, error bursts, lane caps).
///
/// Links with zero probability never draw from their RNG
/// ([`SimRng::chance`] short-circuits at `p <= 0`), so an unarmed core is
/// results-invisible.
#[derive(Debug)]
pub(crate) struct FaultCore {
    links: Vec<LinkFault>,
}

#[derive(Debug)]
struct LinkFault {
    rng: SimRng,
    /// Base per-flit corruption probability.
    p: f64,
    burst_mult: f64,
    burst_until: Cycle,
    blocked: bool,
    lane_cap: Option<u8>,
}

impl LinkFault {
    fn draw(&mut self, now: Cycle) -> bool {
        let p = if now < self.burst_until {
            (self.p * self.burst_mult).min(1.0)
        } else {
            self.p
        };
        self.rng.chance(p)
    }
}

impl FaultCore {
    /// Builds the core with per-link corruption probabilities `ps`,
    /// forking one RNG stream per link from `seed`.
    pub fn new(ps: &[f64], seed: u64) -> Self {
        let mut base = SimRng::seed(seed ^ 0xFA_0175);
        Self {
            links: ps
                .iter()
                .enumerate()
                .map(|(i, &p)| LinkFault {
                    rng: base.fork(i as u64),
                    p,
                    burst_mult: 1.0,
                    burst_until: 0,
                    blocked: false,
                    lane_cap: None,
                })
                .collect(),
        }
    }

    fn draw(&mut self, li: usize, now: Cycle) -> bool {
        self.links[li].draw(now)
    }

    pub fn blocked(&self, li: usize) -> bool {
        self.links[li].blocked
    }

    pub fn set_blocked(&mut self, li: usize, blocked: bool) {
        self.links[li].blocked = blocked;
    }

    pub fn set_burst(&mut self, li: usize, mult: f64, until: Cycle) {
        self.links[li].burst_mult = mult;
        self.links[li].burst_until = until;
    }

    pub fn set_lane_cap(&mut self, li: usize, cap: Option<u8>) {
        self.links[li].lane_cap = cap;
    }

    fn lane_cap(&self, li: usize) -> Option<u8> {
        self.links[li].lane_cap
    }
}

#[derive(Debug, Clone, Copy)]
struct InjectState {
    pid: PacketId,
    next_seq: u16,
    vc: u8,
    len: u16,
}

#[derive(Debug, Default)]
struct Nic {
    queue: VecDeque<PacketId>,
    cur: Option<InjectState>,
}

impl Nic {
    fn has_work(&self) -> bool {
        !self.queue.is_empty() || self.cur.is_some()
    }
}

/// The immutable system description a stage executes against, borrowed
/// from the owning [`crate::network::Network`].
pub(crate) struct EngineCtx<'a> {
    /// The system topology.
    pub topo: &'a SystemTopology,
    /// The routing algorithm.
    pub routing: &'a dyn Routing,
    /// The simulation configuration.
    pub config: &'a SimConfig,
    /// The energy model applied at packet ejection.
    pub energy_model: &'a EnergyModel,
    /// LinkId → out port on its source router (1-based).
    pub link_out_port: &'a [u16],
    /// LinkId → in port on its destination router (1-based).
    pub link_in_port: &'a [u16],
    /// node → ordered outgoing links (out port k+1 = element k).
    pub outport_links: &'a [Vec<LinkId>],
    /// node → ordered incoming links (in port k+1 = element k).
    pub inport_links: &'a [Vec<LinkId>],
}

/// The router's window onto the rest of the system during
/// [`Engine::stage_route`].
struct NetEnv<'a, 'p> {
    now: Cycle,
    node: NodeId,
    topo: &'a SystemTopology,
    routing: &'a dyn Routing,
    store: &'a mut PacketStore,
    media: &'a mut [Medium],
    credit_lines: &'a mut [CreditLine],
    faults: &'a mut FaultCore,
    /// out_port (1-based; 0 is ejection) → LinkId, per this node.
    outport_link: &'a [LinkId],
    /// in_port (1-based; 0 is injection) → LinkId, per this node.
    inport_link: &'a [LinkId],
    vcs: u8,
    eject_budget: u16,
    collector: &'a mut Collector,
    energy_model: &'a EnergyModel,
    measure_from: Cycle,
    route_table: &'a mut RouteTable,
    /// LinkId → out port on its source router (1-based), global map.
    link_out_port: &'a [u16],
    activity: &'a mut bool,
    active_media: &'a mut ActiveSet,
    active_credits: &'a mut ActiveSet,
    probes: &'a mut [&'p mut dyn Probe],
}

impl<'a, 'p> RouterEnv for NetEnv<'a, 'p> {
    fn route(&mut self, pid: PacketId, out: &mut Vec<PortCandidate>) {
        let info = self.store.get(pid);
        if info.dst == self.node {
            for vc in 0..self.vcs {
                out.push(PortCandidate {
                    out_port: 0,
                    vc,
                    baseline: true,
                    tier: 0,
                });
            }
            return;
        }
        let cands =
            self.route_table
                .lookup(self.routing, self.topo, self.node, info.dst, &info.route);
        debug_assert!(
            !cands.is_empty(),
            "no route from {} to {}",
            self.node,
            info.dst
        );
        for c in cands {
            // Links leaving this node occupy out ports 1.. in adjacency
            // order; the network precomputed the link → out-port map.
            let port = self.link_out_port[c.link.index()];
            debug_assert_eq!(
                self.outport_link[(port - 1) as usize],
                c.link,
                "candidate link leaves this node"
            );
            out.push(PortCandidate {
                out_port: port,
                vc: c.vc,
                baseline: c.baseline,
                tier: c.tier,
            });
        }
    }

    fn out_capacity(&mut self, out_port: u16) -> u16 {
        if out_port == 0 {
            return self.eject_budget;
        }
        let link = self.outport_link[(out_port - 1) as usize];
        let li = link.index();
        if self.faults.blocked(li) {
            return 0; // hard-failed link: nothing enters (upstream stalls)
        }
        let cap = match &mut self.media[li] {
            Medium::Plain { line, .. } => line.capacity(self.now) as u16,
            Medium::Guarded { line, .. } => line.capacity(self.now) as u16,
            Medium::Hetero(h) => h.space(),
        };
        match self.faults.lane_cap(li) {
            Some(lanes) => cap.min(lanes as u16),
            None => cap,
        }
    }

    fn send(&mut self, out_port: u16, fref: FlitRef, arena: &mut FlitArena) {
        *self.activity = true;
        if out_port == 0 {
            debug_assert!(self.eject_budget > 0);
            self.eject_budget -= 1;
            let now = self.now;
            let flit = arena.free(fref);
            let info = self.store.get_mut(flit.pid);
            debug_assert_eq!(info.dst, self.node, "flit ejected at wrong node");
            debug_assert_eq!(info.ejected, flit.seq, "out-of-order ejection");
            info.ejected += 1;
            if flit.last {
                debug_assert_eq!(info.ejected, info.len, "flit loss detected");
                let ev = delivery_event(now, info, self.energy_model, self.measure_from);
                self.collector.on_packet_delivered(&ev);
                for p in self.probes.iter_mut() {
                    p.on_packet_delivered(&ev);
                }
                self.store.free(flit.pid);
            }
            return;
        }
        let link = self.outport_link[(out_port - 1) as usize];
        self.active_media.insert(link.index());
        match &mut self.media[link.index()] {
            Medium::Plain { line, .. } => {
                let ok = line.try_send(self.now, fref);
                debug_assert!(ok, "plain link over capacity");
            }
            Medium::Guarded { line, .. } => {
                // Corruption strikes the wire at transmission time; the
                // receiver's CRC catches it and the replay buffer recovers.
                let corrupt = self.faults.draw(link.index(), self.now);
                let ok = line.try_send(self.now, fref, arena, corrupt);
                debug_assert!(ok, "guarded link over capacity");
            }
            Medium::Hetero(h) => {
                // The adapter owns flits by value; the handle rejoins the
                // arena when the flit emerges on the far side.
                let flit = arena.free(fref);
                let info = self.store.get(flit.pid);
                h.push(self.now, flit, info.class, info.priority);
            }
        }
    }

    fn credit(&mut self, in_port: u16, vc: u8) {
        if in_port == 0 {
            return; // injection port: the NIC reads buffer space directly
        }
        let link = self.inport_link[(in_port - 1) as usize];
        self.credit_lines[link.index()].send(self.now, vc);
        self.active_credits.insert(link.index());
    }

    fn note_baseline_lock(&mut self, pid: PacketId) {
        self.store.get_mut(pid).route.baseline_locked = true;
    }
}

/// Builds the probe-facing summary of a packet at tail ejection.
fn delivery_event(
    now: Cycle,
    info: &PacketInfo,
    energy_model: &EnergyModel,
    measure_from: Cycle,
) -> DeliveryEvent {
    let e: PacketEnergy = energy_model.packet(info);
    DeliveryEvent {
        now,
        created: info.created,
        injected: info.injected,
        hops: info.hops,
        len: info.len,
        high_priority: info.priority == chiplet_noc::Priority::High,
        baseline_locked: info.route.baseline_locked,
        measured: info.created >= measure_from,
        onchip_pj: e.onchip_pj,
        parallel_pj: e.parallel_pj,
        serial_pj: e.serial_pj,
    }
}

/// All mutable simulation state, advanced in four stages per cycle.
pub(crate) struct Engine {
    routers: Vec<Router>,
    media: Vec<Medium>,
    credit_lines: Vec<CreditLine>,
    faults: FaultCore,
    store: PacketStore,
    nics: Vec<Nic>,
    /// Flits delivered over each directed link (utilization analysis).
    link_flits: Vec<u64>,
    collector: Collector,
    now: Cycle,
    last_activity: Cycle,
    /// Packets created at or after this cycle count toward the measured
    /// statistics (warm-up exclusion).
    measure_from: Cycle,
    activity: bool,
    active_routers: ActiveSet,
    active_media: ActiveSet,
    active_credits: ActiveSet,
    active_nics: ActiveSet,
    /// Reused drain buffer for the active sets.
    ids: Vec<usize>,
    /// The home of every in-flight flit; queues hold [`FlitRef`] handles.
    arena: FlitArena,
    /// Memoized `(node, destination, lock-class) → candidates` table; the
    /// RC stage hits this instead of re-walking the routing algorithm.
    route_table: RouteTable,
}

impl Engine {
    pub fn new(
        routers: Vec<Router>,
        media: Vec<Medium>,
        credit_lines: Vec<CreditLine>,
        faults: FaultCore,
        nodes: usize,
    ) -> Self {
        let links = media.len();
        Self {
            routers,
            media,
            credit_lines,
            faults,
            store: PacketStore::new(),
            nics: (0..nodes).map(|_| Nic::default()).collect(),
            link_flits: vec![0; links],
            collector: Collector::default(),
            now: 0,
            last_activity: 0,
            measure_from: 0,
            activity: false,
            active_routers: ActiveSet::new(nodes),
            active_media: ActiveSet::new(links),
            active_credits: ActiveSet::new(links),
            active_nics: ActiveSet::new(nodes),
            ids: Vec::new(),
            arena: FlitArena::new(),
            route_table: RouteTable::new(),
        }
    }

    /// The flit arena (leak checks: a drained network holds zero flits).
    pub fn arena(&self) -> &FlitArena {
        &self.arena
    }

    /// The engine's memoized route table (prefilled at network build time,
    /// invalidated when a fault event edits the topology's routing view).
    pub fn route_table(&mut self) -> &mut RouteTable {
        &mut self.route_table
    }

    pub fn now(&self) -> Cycle {
        self.now
    }

    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Mutable access for scripted fault application (see
    /// [`crate::network::Network::set_fault_script`]).
    pub fn fault_parts(&mut self) -> (&mut [Medium], &mut FaultCore, &mut Collector) {
        (&mut self.media, &mut self.faults, &mut self.collector)
    }

    /// Re-activates a medium a scripted fault event touched, so its next
    /// [`Engine::stage_media`] pass runs even if it looked idle.
    pub fn wake_medium(&mut self, li: usize) {
        self.active_media.insert(li);
    }

    pub fn link_flits(&self) -> &[u64] {
        &self.link_flits
    }

    pub fn start_measurement(&mut self) {
        self.measure_from = self.now;
    }

    pub fn live_packets(&self) -> usize {
        self.store.live()
    }

    pub fn queued_packets(&self) -> usize {
        self.nics
            .iter()
            .map(|nic| nic.queue.len() + usize::from(nic.cur.is_some()))
            .sum()
    }

    pub fn idle_cycles(&self) -> Cycle {
        self.now - self.last_activity
    }

    pub fn offer(&mut self, req: PacketRequest) -> PacketId {
        assert_ne!(req.src, req.dst, "self-addressed packet");
        let pid = self.store.alloc(PacketInfo::new(
            req.src,
            req.dst,
            req.len,
            req.class,
            req.priority,
            self.now,
        ));
        self.nics[req.src.index()].queue.push_back(pid);
        self.active_nics.insert(req.src.index());
        pid
    }

    /// Runs one simulation cycle: credits → media → inject → route.
    pub fn step(&mut self, ctx: &EngineCtx<'_>, probes: &mut [&mut dyn Probe]) {
        let now = self.now;
        self.activity = false;
        self.stage_credits(ctx, now);
        self.stage_media(ctx, now, probes);
        self.stage_inject(ctx, now);
        self.stage_route(ctx, now, probes);
        if self.activity {
            self.last_activity = now;
        }
        self.now += 1;
    }

    /// Stage 1: completed credit returns are restored to the transmitting
    /// router.
    fn stage_credits(&mut self, ctx: &EngineCtx<'_>, now: Cycle) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_credits.drain_into(&mut ids);
        for &li in &ids {
            let line = &mut self.credit_lines[li];
            let link = ctx.topo.link(LinkId(li as u32));
            let port = ctx.link_out_port[li];
            while let Some(vc) = line.pop_ready(now) {
                // Credits top up counters only; they cannot give a
                // quiescent router work, so no router activation here.
                self.routers[link.src.index()].add_credit(port, vc);
            }
            if line.in_flight() > 0 {
                self.active_credits.insert(li);
            }
        }
        self.ids = ids;
    }

    /// Stage 2: media deliver arrived flits into input buffers; hetero-PHY
    /// adapters additionally run their dispatch/serialization/reorder
    /// stages. Every delivery is reported to the flit-hop probes.
    fn stage_media(&mut self, ctx: &EngineCtx<'_>, now: Cycle, probes: &mut [&mut dyn Probe]) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_media.drain_into(&mut ids);
        let Engine {
            routers,
            media,
            store,
            link_flits,
            active_routers,
            active_media,
            activity,
            faults,
            collector,
            arena,
            ..
        } = self;
        for &li in &ids {
            let link = ctx.topo.link(LinkId(li as u32));
            let in_port = ctx.link_in_port[li];
            let dst = link.dst.index();
            match &mut media[li] {
                Medium::Plain { line, class } => {
                    line.drain_ready(now, |fref| {
                        let flit = arena.get(fref);
                        link_flits[li] += 1;
                        let info = store.get_mut(flit.pid);
                        match class {
                            LinkClass::OnChip => info.onchip_flits += 1,
                            LinkClass::Parallel => info.parallel_flits += 1,
                            LinkClass::Serial => info.serial_flits += 1,
                            LinkClass::HeteroPhy => unreachable!(),
                        }
                        if flit.is_head() {
                            info.hops += 1;
                        }
                        for p in probes.iter_mut() {
                            p.on_flit_hop(now, li as u32, flit.is_head());
                        }
                        routers[dst].receive(in_port, fref, flit.vc);
                        active_routers.insert(dst);
                        *activity = true;
                    });
                }
                Medium::Guarded { line, class } => {
                    {
                        let lf = &mut faults.links[li];
                        let mut corrupt = || lf.draw(now);
                        let mut ev = |e: LinkEvent| {
                            collector.on_link_event(now, li as u32, e);
                            for p in probes.iter_mut() {
                                p.on_link_event(now, li as u32, e);
                            }
                            if e == LinkEvent::Retransmit {
                                // Recovery traffic is forward progress: it
                                // must hold the deadlock watchdog off.
                                *activity = true;
                            }
                        };
                        line.advance(now, arena, &mut corrupt, &mut ev);
                    }
                    line.drain_delivered(|fref| {
                        let flit = arena.get(fref);
                        link_flits[li] += 1;
                        let info = store.get_mut(flit.pid);
                        match class {
                            LinkClass::OnChip => info.onchip_flits += 1,
                            LinkClass::Parallel => info.parallel_flits += 1,
                            LinkClass::Serial => info.serial_flits += 1,
                            LinkClass::HeteroPhy => unreachable!(),
                        }
                        if flit.is_head() {
                            info.hops += 1;
                        }
                        for p in probes.iter_mut() {
                            p.on_flit_hop(now, li as u32, flit.is_head());
                        }
                        routers[dst].receive(in_port, fref, flit.vc);
                        active_routers.insert(dst);
                        *activity = true;
                    });
                }
                Medium::Hetero(h) => {
                    {
                        let mut ev = |e: LinkEvent| {
                            collector.on_link_event(now, li as u32, e);
                            for p in probes.iter_mut() {
                                p.on_link_event(now, li as u32, e);
                            }
                            if e == LinkEvent::Retransmit {
                                *activity = true;
                            }
                        };
                        h.advance_observed(now, &mut ev);
                    }
                    while let Some((flit, kind)) = h.pop_delivered() {
                        link_flits[li] += 1;
                        let info = store.get_mut(flit.pid);
                        match kind {
                            PhyKind::Parallel => info.parallel_flits += 1,
                            PhyKind::Serial => info.serial_flits += 1,
                        }
                        if flit.is_head() {
                            info.hops += 1;
                        }
                        for p in probes.iter_mut() {
                            p.on_flit_hop(now, li as u32, flit.is_head());
                        }
                        // Back from the adapter's value-world: re-admit.
                        let fref = arena.alloc(flit);
                        routers[dst].receive(in_port, fref, flit.vc);
                        active_routers.insert(dst);
                        *activity = true;
                    }
                }
            }
            if media[li].in_flight() > 0 {
                active_media.insert(li);
            }
        }
        self.ids = ids;
    }

    /// Stage 3: NICs stream queued packets into injection ports.
    fn stage_inject(&mut self, ctx: &EngineCtx<'_>, now: Cycle) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_nics.drain_into(&mut ids);
        for &node in &ids {
            let nic = &mut self.nics[node];
            let router = &mut self.routers[node];
            let mut budget = ctx.config.inj_bandwidth;
            while budget > 0 {
                if nic.cur.is_none() {
                    let Some(&pid) = nic.queue.front() else { break };
                    let Some(vc) = (0..ctx.config.vcs).find(|&v| router.in_vc_idle(0, v)) else {
                        break;
                    };
                    nic.queue.pop_front();
                    nic.cur = Some(InjectState {
                        pid,
                        next_seq: 0,
                        vc,
                        len: self.store.get(pid).len,
                    });
                }
                let st = nic.cur.as_mut().expect("just set");
                let mut moved = false;
                while budget > 0 && st.next_seq < st.len && router.in_space(0, st.vc) > 0 {
                    if st.next_seq == 0 {
                        self.store.get_mut(st.pid).injected = now;
                    }
                    let fref = self.arena.alloc(Flit {
                        pid: st.pid,
                        seq: st.next_seq,
                        vc: st.vc,
                        last: st.next_seq + 1 == st.len,
                    });
                    router.receive(0, fref, st.vc);
                    self.active_routers.insert(node);
                    st.next_seq += 1;
                    budget -= 1;
                    moved = true;
                    self.activity = true;
                }
                if st.next_seq == st.len {
                    nic.cur = None;
                } else if !moved {
                    break;
                }
            }
            if nic.has_work() {
                self.active_nics.insert(node);
            }
        }
        self.ids = ids;
    }

    /// Stage 4: every active router runs its RC/VA/SA pipeline.
    fn stage_route(&mut self, ctx: &EngineCtx<'_>, now: Cycle, probes: &mut [&mut dyn Probe]) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_routers.drain_into(&mut ids);
        let mut routers = std::mem::take(&mut self.routers);
        // One environment for the whole sweep; only the per-node fields
        // are rewritten between routers.
        let mut env = NetEnv {
            now,
            node: NodeId(0),
            topo: ctx.topo,
            routing: ctx.routing,
            store: &mut self.store,
            media: &mut self.media,
            credit_lines: &mut self.credit_lines,
            faults: &mut self.faults,
            outport_link: &[],
            inport_link: &[],
            vcs: ctx.config.vcs,
            eject_budget: 0,
            collector: &mut self.collector,
            energy_model: ctx.energy_model,
            measure_from: self.measure_from,
            route_table: &mut self.route_table,
            link_out_port: ctx.link_out_port,
            activity: &mut self.activity,
            active_media: &mut self.active_media,
            active_credits: &mut self.active_credits,
            probes,
        };
        for &node in &ids {
            let router = &mut routers[node];
            if router.is_quiescent() {
                continue;
            }
            env.node = NodeId(node as u32);
            env.outport_link = &ctx.outport_links[node];
            env.inport_link = &ctx.inport_links[node];
            env.eject_budget = ctx.config.eject_bandwidth as u16;
            router.step(now, &mut env, &mut self.arena);
            if !router.is_quiescent() {
                self.active_routers.insert(node);
            }
        }
        self.routers = routers;
        self.ids = ids;
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("live_packets", &self.store.live())
            .field("active_routers", &self.active_routers.len())
            .field("active_media", &self.active_media.len())
            .finish()
    }
}

//! Snapshot-exact checkpoint and restore for a running [`Network`].
//!
//! A checkpoint serializes every piece of *dynamic* simulation state —
//! router VC buffers, in-flight flits, packet descriptors (with their
//! exact freelist order, so future [`chiplet_noc::PacketId`] assignment
//! is bit-identical), NIC queues, retry windows, hetero-PHY adapters,
//! per-link fault RNG streams, in-transit cross-shard credits, the
//! statistics collector and (when armed) the trace ring and metric
//! cells — into a versioned, checksummed binary blob using the
//! hand-rolled codec in [`simkit::codec`].
//!
//! Static configuration is deliberately **not** serialized. The restore
//! target is rebuilt from the same topology, routing algorithm, config
//! and fault script as the saved run; [`Network::restore`] then overlays
//! the dynamic state. Two fingerprints in the header (config with
//! `shard_threads` zeroed, topology link list) reject mismatched
//! targets up front. Because the blob indexes state by *global* node
//! and link ids — never by shard — the target may be partitioned over a
//! **different** shard count: saving walks entities through their old
//! owner shard, loading dispatches to the new owner. The golden
//! fixture matrix pins that a restored run's results and merged
//! trace/metrics are bit-identical to the uncheckpointed run at every
//! thread count.
//!
//! # Boundary
//!
//! Checkpoints are taken **between cycles** (after a merge). At that
//! boundary the cross-shard flit mailbox is provably empty (flushed in
//! phase 1, drained in phase 2 of the same cycle) and all per-cycle
//! scratch is clear; the only in-transit state is the credit mailbox
//! (flushed in phase 2, replayed next cycle), which is serialized in a
//! canonical per-link order.
//!
//! # Blob layout (version [`CHECKPOINT_VERSION`])
//!
//! ```text
//! "HCPT" | version u32 | crc32(payload) u32 | payload
//! payload := META ENGN COLL PKTS NODE LINK ACTV CRDT OBSV
//! ```
//!
//! Each section is tagged and length-prefixed
//! ([`simkit::codec::ByteWriter::begin_section`]) so misalignment is
//! caught at a layer boundary instead of decoding garbage downstream.

use crate::network::{Collector, Network};
use crate::shard::{CreditMsg, FaultCore, LinkFaultSnap, Medium, Shard};
use chiplet_noc::Flit;
use chiplet_topo::{LinkClass, LinkId, SystemTopology};
use simkit::codec::{crc32, ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::metrics::MetricKind;
use simkit::stats::Histogram;
use std::sync::atomic::Ordering::Relaxed;

/// Checkpoint blob format version. Bump on **any** layout change to the
/// blob (including section contents), and record the bump in
/// `CHANGELOG.md` — CI rejects version drift without a changelog entry.
pub const CHECKPOINT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"HCPT";
const SEC_META: [u8; 4] = *b"META";
const SEC_ENGINE: [u8; 4] = *b"ENGN";
const SEC_COLLECTOR: [u8; 4] = *b"COLL";
const SEC_PACKETS: [u8; 4] = *b"PKTS";
const SEC_NODES: [u8; 4] = *b"NODE";
const SEC_LINKS: [u8; 4] = *b"LINK";
const SEC_ACTIVE: [u8; 4] = *b"ACTV";
const SEC_CREDITS: [u8; 4] = *b"CRDT";
const SEC_OBSERVE: [u8; 4] = *b"OBSV";

/// FNV-1a over `bytes` (fingerprints only — not a payload checksum).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of everything in the config that must match between save
/// and restore. `shard_threads` is zeroed and `idle_skip` cleared first:
/// the whole point of the global-entity blob layout is that the
/// partition may differ, and the skip loop is an engine-time strategy
/// that never touches simulation state — a blob saved mid-skip must
/// restore into a plain ticking engine and vice versa.
fn config_fingerprint(config: &crate::config::SimConfig) -> u64 {
    let mut c = *config;
    c.shard_threads = 0;
    c.idle_skip = false;
    fnv64(format!("{c:?}").as_bytes())
}

fn class_code(class: LinkClass) -> u8 {
    match class {
        LinkClass::OnChip => 0,
        LinkClass::Parallel => 1,
        LinkClass::Serial => 2,
        LinkClass::HeteroPhy => 3,
    }
}

/// Fingerprint of the topology's *fault-invariant* shape: node count
/// plus every link's endpoints and class. Up/down state is excluded on
/// purpose — hard faults edit the topology's routing view before a
/// save, and restore replays those edits from the serialized per-link
/// fault flags.
fn topo_fingerprint(topo: &SystemTopology) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u32(topo.geometry().nodes());
    w.put_usize(topo.links().len());
    for l in topo.links() {
        w.put_u32(l.src.0);
        w.put_u32(l.dst.0);
        w.put_u8(class_code(l.class));
    }
    fnv64(&w.into_bytes())
}

fn save_collector(c: &Collector, w: &mut ByteWriter) {
    c.latency.save_state(w);
    c.net_latency.save_state(w);
    c.latency_high.save_state(w);
    match &c.latency_hist {
        Some(h) => {
            w.put_bool(true);
            h.save_state(w);
        }
        None => w.put_bool(false),
    }
    c.hops.save_state(w);
    c.energy.save_state(w);
    w.put_f64(c.onchip_pj);
    w.put_f64(c.parallel_pj);
    w.put_f64(c.serial_pj);
    for v in [
        c.delivered_packets,
        c.delivered_flits,
        c.measured_packets,
        c.measured_flits,
        c.locked_packets,
        c.corrupted_flits,
        c.retransmitted_flits,
        c.retry_naks,
        c.retry_timeouts,
        c.failovers,
        c.faults_applied,
    ] {
        w.put_u64(v);
    }
    w.put_usize(c.by_tag.len());
    for s in &c.by_tag {
        w.put_u64(s.delivered);
        w.put_u64(s.packets);
        w.put_u64(s.flits);
        w.put_u64(s.latency_cycles);
        w.put_f64(s.energy_pj);
        w.put_u64(s.flit_hops);
    }
}

fn load_collector(c: &mut Collector, r: &mut ByteReader) -> Result<(), CodecError> {
    c.latency.load_state(r)?;
    c.net_latency.load_state(r)?;
    c.latency_high.load_state(r)?;
    c.latency_hist = if r.get_bool()? {
        // Bucket geometry fixed by the collector: 4-cycle buckets.
        let mut h = Histogram::new(4.0, 2048);
        h.load_state(r)?;
        Some(h)
    } else {
        None
    };
    c.hops.load_state(r)?;
    c.energy.load_state(r)?;
    c.onchip_pj = r.get_f64()?;
    c.parallel_pj = r.get_f64()?;
    c.serial_pj = r.get_f64()?;
    for v in [
        &mut c.delivered_packets,
        &mut c.delivered_flits,
        &mut c.measured_packets,
        &mut c.measured_flits,
        &mut c.locked_packets,
        &mut c.corrupted_flits,
        &mut c.retransmitted_flits,
        &mut c.retry_naks,
        &mut c.retry_timeouts,
        &mut c.failovers,
        &mut c.faults_applied,
    ] {
        *v = r.get_u64()?;
    }
    let tags = r.get_usize()?;
    c.by_tag.clear();
    c.by_tag.reserve(tags);
    for _ in 0..tags {
        c.by_tag.push(crate::network::TagStats {
            delivered: r.get_u64()?,
            packets: r.get_u64()?,
            flits: r.get_u64()?,
            latency_cycles: r.get_u64()?,
            energy_pj: r.get_f64()?,
            flit_hops: r.get_u64()?,
        });
    }
    Ok(())
}

fn medium_tag(m: &Medium) -> u8 {
    match m {
        Medium::Plain { .. } => 0,
        Medium::Guarded { .. } => 1,
        Medium::Hetero(_) => 2,
    }
}

impl Network {
    /// Serializes the complete dynamic simulation state into a
    /// versioned, checksummed blob.
    ///
    /// Must be called between cycles (any point outside
    /// [`Network::step`], which is all a caller can reach). The blob
    /// restores onto a freshly built network with the same config
    /// (ignoring `shard_threads`), topology, routing and fault script —
    /// see [`Network::restore`].
    ///
    /// # Panics
    ///
    /// Panics if internal between-cycles invariants do not hold
    /// (a non-empty cross-shard flit mailbox or per-cycle scratch),
    /// which cannot happen through the public API.
    pub fn checkpoint(&self) -> Vec<u8> {
        assert!(
            self.engine.mail.flits.is_empty(),
            "checkpoint must be taken between cycles: flit mailbox not empty"
        );
        let guards: Vec<_> = self
            .engine
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned"))
            .collect();
        for g in &guards {
            assert!(
                g.scratch_empty(),
                "checkpoint must be taken between cycles: shard scratch not empty"
            );
        }
        let part = &self.engine.part;
        let topo = self.topo.read().expect("topology lock poisoned");
        let nodes = part.node_shard.len();
        let links = part.link_owner.len();

        let mut w = ByteWriter::new();

        let t = w.begin_section(SEC_META);
        w.put_u64(config_fingerprint(&self.config));
        w.put_u64(topo_fingerprint(&topo));
        w.put_u32(nodes as u32);
        w.put_u32(links as u32);
        w.end_section(t);

        let t = w.begin_section(SEC_ENGINE);
        w.put_u64(self.engine.now.load(Relaxed));
        w.put_u64(self.engine.measure_from.load(Relaxed));
        w.put_u64(self.hub.last_activity);
        w.put_usize(self.hub.script_pos);
        w.put_u64(guards.iter().map(|g| g.arena.allocated_total()).sum());
        w.put_u64(guards.iter().map(|g| g.active_cycles).sum());
        w.put_u64(self.hub.barrier_wait_ns);
        w.end_section(t);

        let t = w.begin_section(SEC_COLLECTOR);
        save_collector(&self.hub.collector, &mut w);
        w.end_section(t);

        let t = w.begin_section(SEC_PACKETS);
        self.engine
            .store
            .read()
            .expect("store lock poisoned")
            .save_state(&mut w);
        w.end_section(t);

        // Global entity walk: each node/link serialized through its
        // *owner* shard, in ascending global id order. Loading dispatches
        // by the target's (possibly different) partition.
        let t = w.begin_section(SEC_NODES);
        for i in 0..nodes {
            let g = &*guards[part.node_shard[i] as usize];
            g.routers[i].save_state_with(&g.arena, &mut w);
            g.nics[i].save_state(&mut w);
        }
        w.end_section(t);

        let t = w.begin_section(SEC_LINKS);
        for li in 0..links {
            let g = &*guards[part.link_owner[li] as usize];
            let m = g.media[li].as_ref().expect("owner holds the medium");
            w.put_u8(medium_tag(m));
            match m {
                Medium::Plain { line, .. } => {
                    line.save_state_with(&mut w, |fr, w| g.arena.get(*fr).save_state(w));
                }
                Medium::Guarded { line, .. } => line.save_state_with(&g.arena, &mut w),
                Medium::Hetero(h) => h.save_state(&mut w),
            }
            g.credit_lines[li]
                .as_ref()
                .expect("owner holds the credit line")
                .save_state(&mut w);
            w.put_u64(g.link_flits[li]);
            g.faults.save_link(li, &mut w);
        }
        w.end_section(t);

        // Active sets as global sorted member lists (each entry only ever
        // set by its owner, so the per-shard sets are disjoint).
        let t = w.begin_section(SEC_ACTIVE);
        let mut members = Vec::new();
        let mut scratch = Vec::new();
        for pick in [0usize, 1, 2, 3] {
            members.clear();
            for g in &guards {
                let set = match pick {
                    0 => &g.active_routers,
                    1 => &g.active_media,
                    2 => &g.active_credits,
                    _ => &g.active_nics,
                };
                set.members_into(&mut scratch);
                members.append(&mut scratch);
            }
            members.sort_unstable();
            w.put_usize(members.len());
            for &m in &members {
                w.put_u32(m as u32);
            }
        }
        w.end_section(t);

        // In-transit cross-shard credits, canonicalized to (link id,
        // per-link send order). Per-link order is what replay semantics
        // (and a later re-checkpoint of the credit lines) depend on;
        // cross-link order within the mailbox is immaterial because each
        // link has its own credit line.
        let t = w.begin_section(SEC_CREDITS);
        let mut msgs: Vec<(u32, u32, u8)> = Vec::new();
        let mut seq = vec![0u32; links];
        self.engine.mail.credits.for_each(|_, _, m: &CreditMsg| {
            let s = seq[m.li as usize];
            seq[m.li as usize] += 1;
            msgs.push((m.li, s, m.vc));
        });
        msgs.sort_unstable();
        w.put_usize(msgs.len());
        for (li, _, vc) in msgs {
            w.put_u32(li);
            w.put_u8(vc);
        }
        w.end_section(t);

        // Observability: the trace ring verbatim; metric cells folded to
        // one merged slice (counters sum, gauges max) — per-shard splits
        // are partition-dependent, the fold is not.
        let t = w.begin_section(SEC_OBSERVE);
        match &self.hub.trace {
            Some(ring) => {
                w.put_bool(true);
                ring.save_state(&mut w);
            }
            None => w.put_bool(false),
        }
        match &self.hub.metrics {
            Some(reg) => {
                w.put_bool(true);
                let mut folded = vec![0u64; reg.specs().len()];
                for g in &guards {
                    if let Some(m) = &g.metrics {
                        for (acc, (&cell, spec)) in folded
                            .iter_mut()
                            .zip(m.slice.cells().iter().zip(reg.specs()))
                        {
                            match spec.kind {
                                // Histograms are snapshot-derived, never
                                // hot-path cells; sum is the safe fold.
                                MetricKind::Counter | MetricKind::Histogram => *acc += cell,
                                MetricKind::Gauge => *acc = (*acc).max(cell),
                            }
                        }
                    }
                }
                w.put_usize(folded.len());
                for v in folded {
                    w.put_u64(v);
                }
            }
            None => w.put_bool(false),
        }
        w.end_section(t);

        let payload = w.into_bytes();
        let mut blob = ByteWriter::new();
        blob.put_bytes(&MAGIC);
        blob.put_u32(CHECKPOINT_VERSION);
        blob.put_u32(crc32(&payload));
        blob.put_bytes(&payload);
        blob.into_bytes()
    }

    /// Overlays a checkpoint blob onto this freshly built network.
    ///
    /// The target must be built from the same topology, routing
    /// algorithm, config (ignoring `shard_threads` — restoring into a
    /// different shard count is supported and bit-identical) and with
    /// the same fault script and instrumentation
    /// ([`Network::enable_trace`] / [`Network::enable_metrics`]) armed
    /// as the saved run. Call [`Network::set_fault_script`] *before*
    /// `restore` — the blob carries the script cursor.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadMagic`] / [`CodecError::BadVersion`] /
    /// [`CodecError::BadChecksum`] / [`CodecError::Truncated`] for a
    /// damaged or foreign blob; [`CodecError::Mismatch`] when the blob
    /// is well-formed but the target differs (config, topology,
    /// instrumentation arming, or not freshly built); and
    /// [`CodecError::Corrupt`] / [`CodecError::BadSection`] when a
    /// decoded value is out of range. On error the target is left in an
    /// unspecified state — rebuild it before retrying.
    pub fn restore(&mut self, blob: &[u8]) -> Result<(), CodecError> {
        let mut r = ByteReader::new(blob);
        if r.get_bytes(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CodecError::BadVersion {
                found: version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let crc = r.get_u32()?;
        let payload = r.get_bytes(r.remaining())?;
        if crc32(payload) != crc {
            return Err(CodecError::BadChecksum);
        }
        if self.engine.now() != 0 || self.engine.live_packets() != 0 {
            return Err(CodecError::Mismatch(
                "restore target must be a freshly built network (cycle 0, no traffic)".into(),
            ));
        }
        let mut r = ByteReader::new(payload);

        r.expect_section(SEC_META)?;
        let config_fp = r.get_u64()?;
        let topo_fp = r.get_u64()?;
        let nodes = r.get_u32()? as usize;
        let links = r.get_u32()? as usize;
        let link_dst: Vec<u32> = {
            let topo = self.topo.get_mut().expect("topology lock poisoned");
            if config_fp != config_fingerprint(&self.config) {
                return Err(CodecError::Mismatch(
                    "checkpoint was taken under a different configuration".into(),
                ));
            }
            if topo_fp != topo_fingerprint(topo) {
                return Err(CodecError::Mismatch(
                    "checkpoint was taken on a different topology".into(),
                ));
            }
            topo.links().iter().map(|l| l.dst.0).collect()
        };
        if nodes != self.engine.part.node_shard.len() || links != self.engine.part.link_owner.len()
        {
            return Err(CodecError::Mismatch(
                "checkpoint entity counts do not match the rebuilt system".into(),
            ));
        }

        r.expect_section(SEC_ENGINE)?;
        let now = r.get_u64()?;
        let measure_from = r.get_u64()?;
        let last_activity = r.get_u64()?;
        let script_pos = r.get_usize()?;
        let alloc_total = r.get_u64()?;
        let active_cycles = r.get_u64()?;
        let barrier_wait_ns = r.get_u64()?;
        if script_pos > self.hub.script.events().len() {
            return Err(CodecError::Mismatch(
                "fault-script cursor beyond the installed script (install the saved run's \
                 script before restoring)"
                    .into(),
            ));
        }

        r.expect_section(SEC_COLLECTOR)?;
        load_collector(&mut self.hub.collector, &mut r)?;

        r.expect_section(SEC_PACKETS)?;
        self.engine
            .store
            .get_mut()
            .expect("store lock poisoned")
            .load_state(&mut r)?;

        r.expect_section(SEC_NODES)?;
        for i in 0..nodes {
            let owner = self.engine.part.node_shard[i] as usize;
            let sh = self.engine.shards[owner]
                .get_mut()
                .expect("shard lock poisoned");
            let Shard {
                routers,
                nics,
                arena,
                ..
            } = &mut *sh;
            routers[i].load_state_with(arena, &mut r)?;
            nics[i].load_state(&mut r)?;
        }

        r.expect_section(SEC_LINKS)?;
        let mut fault_snaps: Vec<LinkFaultSnap> = Vec::with_capacity(links);
        for li in 0..links {
            let owner = self.engine.part.link_owner[li] as usize;
            let sh = self.engine.shards[owner]
                .get_mut()
                .expect("shard lock poisoned");
            let Shard {
                media,
                credit_lines,
                link_flits,
                arena,
                ..
            } = &mut *sh;
            let tag = r.get_u8()?;
            let m = media[li].as_mut().expect("owner holds the medium");
            match (tag, m) {
                (0, Medium::Plain { line, .. }) => {
                    line.load_state_with(&mut r, |r| Flit::read_from(r).map(|f| arena.alloc(f)))?;
                }
                (1, Medium::Guarded { line, .. }) => line.load_state_with(arena, &mut r)?,
                (2, Medium::Hetero(h)) => h.load_state(&mut r)?,
                (t @ 0..=2, _) => {
                    return Err(CodecError::Mismatch(format!(
                        "link {li}: checkpoint medium kind {t} does not match the rebuilt medium"
                    )))
                }
                _ => return Err(CodecError::Corrupt("medium kind tag")),
            }
            credit_lines[li]
                .as_mut()
                .expect("owner holds the credit line")
                .load_state(&mut r)?;
            link_flits[li] = r.get_u64()?;
            fault_snaps.push(FaultCore::read_link(&mut r)?);
        }
        // Every shard holds the full fault core; overlay each link's
        // snapshot on all copies so the streams stay partition-invisible.
        for s in &mut self.engine.shards {
            let sh = s.get_mut().expect("shard lock poisoned");
            for (li, snap) in fault_snaps.iter().enumerate() {
                sh.faults.apply_link(li, snap);
            }
        }

        r.expect_section(SEC_ACTIVE)?;
        for s in &mut self.engine.shards {
            let sh = s.get_mut().expect("shard lock poisoned");
            sh.active_routers.clear();
            sh.active_media.clear();
            sh.active_credits.clear();
            sh.active_nics.clear();
        }
        for pick in [0usize, 1, 2, 3] {
            let n = r.get_usize()?;
            let (cap, by_node) = match pick {
                0 => (nodes, true),
                1 | 2 => (links, false),
                _ => (nodes, true),
            };
            for _ in 0..n {
                let i = r.get_u32()? as usize;
                if i >= cap {
                    return Err(CodecError::Corrupt("active-set member out of range"));
                }
                let owner = if by_node {
                    self.engine.part.node_shard[i] as usize
                } else {
                    self.engine.part.link_owner[i] as usize
                };
                let sh = self.engine.shards[owner]
                    .get_mut()
                    .expect("shard lock poisoned");
                match pick {
                    0 => sh.active_routers.insert(i),
                    1 => sh.active_media.insert(i),
                    2 => sh.active_credits.insert(i),
                    _ => sh.active_nics.insert(i),
                }
            }
        }

        r.expect_section(SEC_CREDITS)?;
        self.engine.mail.flits.clear();
        self.engine.mail.credits.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let li = r.get_u32()? as usize;
            let vc = r.get_u8()?;
            if li >= links {
                return Err(CodecError::Corrupt("credit message link out of range"));
            }
            // Producer = shard of the link's destination router (the
            // crediting side); consumer = the link's owner, which replays
            // the credit into its credit line next phase 1.
            let producer = self.engine.part.node_shard[link_dst[li] as usize] as usize;
            let consumer = self.engine.part.link_owner[li] as usize;
            self.engine
                .mail
                .credits
                .push(producer, consumer, CreditMsg { li: li as u32, vc });
        }

        r.expect_section(SEC_OBSERVE)?;
        let has_trace = r.get_bool()?;
        match (&mut self.hub.trace, has_trace) {
            (Some(ring), true) => ring.load_state(&mut r)?,
            (None, true) => {
                return Err(CodecError::Mismatch(
                    "checkpoint carries a trace ring but tracing is not enabled on the \
                     restore target"
                        .into(),
                ))
            }
            (Some(_), false) => {
                return Err(CodecError::Mismatch(
                    "tracing is enabled on the restore target but the checkpoint carries no \
                     trace ring"
                        .into(),
                ))
            }
            (None, false) => {}
        }
        let has_metrics = r.get_bool()?;
        match (&self.hub.metrics, has_metrics) {
            (Some(reg), true) => {
                let n = r.get_usize()?;
                if n != reg.specs().len() {
                    return Err(CodecError::Mismatch(
                        "checkpoint metric catalog size differs from the restore target".into(),
                    ));
                }
                let mut folded = Vec::with_capacity(n);
                for _ in 0..n {
                    folded.push(r.get_u64()?);
                }
                // Write the merged cells into shard 0 and zero the rest:
                // the fold (sum / max with zeros) reproduces the totals.
                for (sid, s) in self.engine.shards.iter_mut().enumerate() {
                    let sh = s.get_mut().expect("shard lock poisoned");
                    let m = sh.metrics.as_mut().expect("metrics armed on every shard");
                    if sid == 0 {
                        m.slice.cells_mut().copy_from_slice(&folded);
                    } else {
                        m.slice.cells_mut().fill(0);
                    }
                }
            }
            (None, true) => {
                return Err(CodecError::Mismatch(
                    "checkpoint carries metric cells but metrics are not enabled on the \
                     restore target"
                        .into(),
                ))
            }
            (Some(_), false) => {
                return Err(CodecError::Mismatch(
                    "metrics are enabled on the restore target but the checkpoint carries \
                     no cells"
                        .into(),
                ))
            }
            (None, false) => {}
        }
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes after final section"));
        }

        // Lifetime-allocation counter: loading re-admitted exactly the
        // in-flight handles; charge the difference to shard 0 so the
        // global sum (the observable quantity) matches the saved run.
        let current: u64 = self
            .engine
            .shards
            .iter_mut()
            .map(|s| {
                s.get_mut()
                    .expect("shard lock poisoned")
                    .arena
                    .allocated_total()
            })
            .sum();
        if alloc_total < current {
            return Err(CodecError::Corrupt("arena lifetime-allocation counter"));
        }
        {
            let sh = self.engine.shards[0]
                .get_mut()
                .expect("shard lock poisoned");
            let base = sh.arena.allocated_total();
            sh.arena.set_allocated_total(base + (alloc_total - current));
            sh.active_cycles = active_cycles;
        }

        // Replay hard-fault topology edits (the routing view is not
        // serialized; it is a pure function of the blocked set) and drop
        // the stale prefilled route tables.
        let blocked: Vec<LinkId> = fault_snaps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.blocked)
            .map(|(li, _)| LinkId(li as u32))
            .collect();
        if !blocked.is_empty() {
            let topo = self.topo.get_mut().expect("topology lock poisoned");
            for &id in &blocked {
                topo.set_pair_down(id, true);
            }
            for s in &mut self.engine.shards {
                let sh = s.get_mut().expect("shard lock poisoned");
                sh.route_table.invalidate();
                sh.route_table
                    .prefill_scoped(self.routing.as_ref(), topo, &sh.nodes);
            }
        }

        self.engine.now.store(now, Relaxed);
        self.engine.measure_from.store(measure_from, Relaxed);
        self.hub.last_activity = last_activity;
        self.hub.script_pos = script_pos;
        self.hub.barrier_wait_ns = barrier_wait_ns;

        self.validate_invariants().map_err(CodecError::Mismatch)?;
        Ok(())
    }

    /// Clones this network's current state into `n` independent copies,
    /// each built by `build` and overlaid with one shared checkpoint of
    /// `self` — the warm-start primitive: warm one network up, then fork
    /// it into divergent sweep points without re-simulating the warmup.
    ///
    /// `build` must produce networks restore-compatible with `self`
    /// (same topology/routing/config modulo `shard_threads`); a builder
    /// closure is taken because `Network` itself is not `Clone` (the
    /// routing strategy is a trait object).
    ///
    /// # Errors
    ///
    /// Whatever [`Network::restore`] reports for a mismatched `build`.
    pub fn fork_with<F>(&self, n: usize, mut build: F) -> Result<Vec<Network>, CodecError>
    where
        F: FnMut() -> Network,
    {
        let blob = self.checkpoint();
        (0..n)
            .map(|_| {
                let mut net = build();
                net.restore(&blob)?;
                Ok(net)
            })
            .collect()
    }

    /// Structural invariant check over the full engine state, run after
    /// every restore (and available to tests): per-router counter and
    /// credit consistency, arena occupancy == live handles held by
    /// routers and link pipelines, per-VC credit conservation on plain
    /// links, and an empty cross-shard flit mailbox.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate_invariants(&self) -> Result<(), String> {
        if !self.engine.mail.flits.is_empty() {
            return Err("cross-shard flit mailbox not empty between cycles".into());
        }
        let guards: Vec<_> = self
            .engine
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned"))
            .collect();
        let part = &self.engine.part;
        let topo = self.topo.read().expect("topology lock poisoned");

        // Per-shard handle accounting: every arena handle is held by
        // exactly one router VC buffer, plain pipeline slot, or retry
        // window (forward frames + delivered queue). Hetero adapters
        // hold flits by value, never handles.
        for (sid, g) in guards.iter().enumerate() {
            let mut held = 0usize;
            for &node in &g.nodes {
                let i = node.index();
                g.routers[i]
                    .check_invariants()
                    .map_err(|e| format!("shard {sid} router {i}: {e}"))?;
                held += g.routers[i].buffered_flits();
            }
            for (li, m) in g.media.iter().enumerate() {
                match m {
                    Some(Medium::Plain { line, .. }) => held += line.in_flight(),
                    Some(Medium::Guarded { line, .. }) => held += line.held_handles(),
                    Some(Medium::Hetero(_)) | None => {}
                }
                let _ = li;
            }
            if g.arena.in_flight() != held {
                return Err(format!(
                    "shard {sid}: arena holds {} flits but routers/links account for {held}",
                    g.arena.in_flight()
                ));
            }
        }

        // Per-VC credit conservation on plain links: transmitter credits
        // + flits in the pipeline + receiver buffer occupancy + credits
        // in flight back (credit line + cross-shard mailbox) must equal
        // the receiver's buffer depth.
        let mut mail_credits = vec![0u32; part.link_owner.len() * self.config.vcs as usize];
        self.engine.mail.credits.for_each(|_, _, m| {
            mail_credits[m.li as usize * self.config.vcs as usize + m.vc as usize] += 1;
        });
        for link in topo.links() {
            let li = link.id.index();
            let g = &guards[part.link_owner[li] as usize];
            let Some(Medium::Plain { line, .. }) = &g.media[li] else {
                continue;
            };
            let depth = match link.class {
                LinkClass::OnChip => self.config.onchip_vc_depth,
                _ => self.config.iface_vc_depth,
            } as usize;
            let src = &guards[part.node_shard[link.src.index()] as usize].routers[link.src.index()];
            let dst = &guards[part.node_shard[link.dst.index()] as usize].routers[link.dst.index()];
            for vc in 0..self.config.vcs {
                let credits = src.out_vc_credits(self.link_out_port[li], vc) as usize;
                let in_line = line
                    .iter_in_flight()
                    .filter(|fr| g.arena.get(**fr).vc == vc)
                    .count();
                let occupancy = dst.in_occupancy(self.link_in_port[li], vc);
                let returning = g.credit_lines[li]
                    .as_ref()
                    .expect("owner holds the credit line")
                    .iter_pending()
                    .filter(|&&(_, v)| v == vc)
                    .count()
                    + mail_credits[li * self.config.vcs as usize + vc as usize] as usize;
                let total = credits + in_line + occupancy + returning;
                if total != depth {
                    return Err(format!(
                        "link {li} vc {vc}: credit conservation violated \
                         ({credits} credits + {in_line} in line + {occupancy} buffered + \
                         {returning} returning != depth {depth})"
                    ));
                }
            }
        }

        // Descriptor sanity: NIC backlogs can never exceed the live
        // descriptor population.
        let queued: usize = guards
            .iter()
            .map(|g| g.nics.iter().map(|nic| nic.pending()).sum::<usize>())
            .sum();
        let live = self
            .engine
            .store
            .read()
            .expect("store lock poisoned")
            .live();
        if queued > live {
            return Err(format!(
                "{queued} packets queued at NICs but only {live} descriptors live"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use chiplet_topo::{build, routing, Geometry, SystemKind};
    use chiplet_traffic::PacketRequest;
    use simkit::trace::TraceFilter;

    fn mesh_net(threads: usize) -> Network {
        let geom = Geometry::new(2, 2, 2, 2);
        let topo = build::parallel_mesh(geom);
        let r = routing::for_system(SystemKind::ParallelMesh, 2);
        Network::new(topo, r, SimConfig::default().with_shard_threads(threads))
    }

    fn inject_and_step(net: &mut Network, cycles: u64) {
        let g = *net.topology().geometry();
        for i in 0..6u16 {
            net.offer(PacketRequest::new(
                g.node_at(i % 4, 0),
                g.node_at(3 - i % 4, 3),
                16,
            ));
        }
        for _ in 0..cycles {
            net.step();
        }
    }

    #[test]
    fn round_trip_mid_flight_continues_bit_identically() {
        let mut a = mesh_net(1);
        inject_and_step(&mut a, 10);
        assert!(a.flits_in_flight() > 0, "flits should be mid-flight");
        let blob = a.checkpoint();
        let mut b = mesh_net(1);
        b.restore(&blob).unwrap();
        assert_eq!(a.now(), b.now());
        for _ in 0..2_000 {
            if a.live_packets() == 0 && b.live_packets() == 0 {
                break;
            }
            a.step();
            b.step();
            assert_eq!(a.live_packets(), b.live_packets());
        }
        assert_eq!(a.live_packets(), 0, "run should drain");
        let (ca, cb) = (a.collector(), b.collector());
        assert_eq!(ca.delivered_packets, cb.delivered_packets);
        assert_eq!(ca.latency.mean().to_bits(), cb.latency.mean().to_bits());
        assert_eq!(a.link_flits(), b.link_flits());
        assert_eq!(a.flits_allocated_total(), b.flits_allocated_total());
    }

    #[test]
    fn restore_into_different_shard_count() {
        let mut a = mesh_net(1);
        inject_and_step(&mut a, 10);
        let blob = a.checkpoint();
        let mut b = mesh_net(4);
        b.restore(&blob).unwrap();
        assert_eq!(b.num_shards(), 4, "partition comes from the target");
        while a.live_packets() > 0 {
            a.step();
        }
        while b.live_packets() > 0 {
            b.step();
        }
        assert_eq!(
            a.collector().delivered_packets,
            b.collector().delivered_packets
        );
        assert_eq!(a.link_flits(), b.link_flits());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn header_rejects_garbage_truncation_and_drift() {
        let mut a = mesh_net(1);
        inject_and_step(&mut a, 5);
        let blob = a.checkpoint();
        assert_eq!(
            mesh_net(1).restore(b"not a checkpoint").unwrap_err(),
            CodecError::BadMagic
        );
        assert_eq!(
            mesh_net(1).restore(&blob[..8]).unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(
            mesh_net(1).restore(&blob[..blob.len() - 3]).unwrap_err(),
            CodecError::BadChecksum
        );
        let mut flipped = blob.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(
            mesh_net(1).restore(&flipped).unwrap_err(),
            CodecError::BadChecksum
        );
        let mut drift = blob;
        drift[4] ^= 0xFF;
        assert!(matches!(
            mesh_net(1).restore(&drift).unwrap_err(),
            CodecError::BadVersion { .. }
        ));
    }

    #[test]
    fn mismatched_targets_rejected() {
        let mut a = mesh_net(1);
        inject_and_step(&mut a, 5);
        let blob = a.checkpoint();
        // Different config (seed participates in the fingerprint).
        let geom = Geometry::new(2, 2, 2, 2);
        let topo = build::parallel_mesh(geom);
        let r = routing::for_system(SystemKind::ParallelMesh, 2);
        let mut cfg = SimConfig::default();
        cfg.seed ^= 1;
        let mut other = Network::new(topo, r, cfg);
        assert!(matches!(
            other.restore(&blob).unwrap_err(),
            CodecError::Mismatch(_)
        ));
        // Not freshly built.
        let mut warm = mesh_net(1);
        inject_and_step(&mut warm, 3);
        assert!(matches!(
            warm.restore(&blob).unwrap_err(),
            CodecError::Mismatch(_)
        ));
        // Instrumentation armed on the target but absent from the blob.
        let mut traced = mesh_net(1);
        traced.enable_trace(1024, TraceFilter::all());
        assert!(matches!(
            traced.restore(&blob).unwrap_err(),
            CodecError::Mismatch(_)
        ));
    }

    #[test]
    fn fork_with_spawns_identical_copies() {
        let mut a = mesh_net(1);
        inject_and_step(&mut a, 10);
        let forks = a.fork_with(2, || mesh_net(2)).unwrap();
        assert_eq!(forks.len(), 2);
        for f in &forks {
            assert_eq!(f.now(), a.now());
            assert_eq!(f.live_packets(), a.live_packets());
            f.validate_invariants().unwrap();
        }
    }
}

//! Network assembly: routers, media, credit lines and port maps.
//!
//! A [`Network`] instantiates one router per node of a
//! [`SystemTopology`], one medium per directed link (a plain
//! [`DelayLine`](chiplet_noc::DelayLine) for on-chip/parallel/serial
//! links, a [`HeteroPhyLink`] for hetero-PHY links), the reverse credit
//! lines, and per-node NICs (injection queues + ejection accounting),
//! then partitions them into chiplet-group shards. The per-cycle
//! execution lives in [`crate::engine::ShardedEngine`] (staged cycles
//! over the shards, serial or on a worker pool — see
//! [`crate::parallel`]); this module holds the immutable system
//! description and the statistics [`Collector`].

use crate::config::SimConfig;
use crate::energy::EnergyModel;
use crate::engine::{EngineCtx, Hub, ShardedEngine};
use crate::shard::{Medium, MetricIds, Partition, Shard};
use chiplet_fault::{FaultEvent, FaultScript, FaultTarget, TimedFault};
use chiplet_noc::{CreditLine, DelayLine, PacketId, RetryLine, Router};
use chiplet_phy::{HeteroPhyLink, PhyKind};
use chiplet_topo::routing::Routing;
use chiplet_topo::{LinkClass, LinkId, SystemTopology};
use chiplet_traffic::PacketRequest;
use simkit::metrics::{MetricKind, MetricsRegistry, MetricsSnapshot};
use simkit::probe::{DeliveryEvent, LinkEvent, Probe};
use simkit::stats::{Histogram, Running};
use simkit::trace::{link_event_code, TraceEvent, TraceFilter, TraceKind, TraceRing, NO_PID};
use simkit::{Cycle, SimRng};
use std::sync::RwLock;

/// Statistics accumulated over delivered packets.
///
/// The collector is itself a [`Probe`]: the engine reports every packet
/// delivery to it exactly as it does to any externally attached probe,
/// and the collector folds the event into its running statistics.
#[derive(Debug, Default, Clone)]
pub struct Collector {
    /// Total (creation → delivery) packet latency.
    pub latency: Running,
    /// Network (injection → delivery) packet latency.
    pub net_latency: Running,
    /// Latency of high-priority packets only (application-aware
    /// scheduling metrics, §5.3.2).
    pub latency_high: Running,
    /// Latency distribution (4-cycle buckets up to 8192, for percentiles).
    pub latency_hist: Option<Histogram>,
    /// Head-flit hop counts.
    pub hops: Running,
    /// Per-packet total energy, pJ.
    pub energy: Running,
    /// Sum of on-chip energy over measured packets, pJ.
    pub onchip_pj: f64,
    /// Sum of parallel-interface energy, pJ.
    pub parallel_pj: f64,
    /// Sum of serial-interface energy, pJ.
    pub serial_pj: f64,
    /// All packets delivered (measured or not).
    pub delivered_packets: u64,
    /// All flits delivered.
    pub delivered_flits: u64,
    /// Measured packets delivered.
    pub measured_packets: u64,
    /// Measured flits delivered.
    pub measured_flits: u64,
    /// Measured packets that hit the livelock baseline lock.
    pub locked_packets: u64,
    /// Flits the link layer detected as corrupted (CRC mismatch at a
    /// retry receiver, or a hetero-PHY exit).
    pub corrupted_flits: u64,
    /// Flits retransmitted by the retry layer or a hetero-PHY adapter.
    pub retransmitted_flits: u64,
    /// NAKs sent by retry receivers.
    pub retry_naks: u64,
    /// Retry transmitter timeouts (lost-ack recovery).
    pub retry_timeouts: u64,
    /// Hetero-PHY links that kept serving through a PHY hard failure.
    pub failovers: u64,
    /// Scripted hard faults applied (PHY-down, link-down, lane degrade).
    pub faults_applied: u64,
    /// Per-workload-phase statistics, indexed by packet tag. Grown on
    /// demand when a tagged packet (tag ≥ 1) is delivered, so untagged
    /// runs never allocate; element 0 is a placeholder that stays zero.
    pub by_tag: Vec<TagStats>,
}

/// Delivery statistics for one workload phase tag (see
/// [`chiplet_traffic::PacketRequest::tag`]).
///
/// `delivered` counts **every** delivery — it is the dependency-release
/// signal phase workloads key off, so it must not be gated on the
/// measurement window. The remaining fields cover measured packets only,
/// mirroring the collector's aggregate statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TagStats {
    /// All packets delivered with this tag (measured or not).
    pub delivered: u64,
    /// Measured packets delivered.
    pub packets: u64,
    /// Measured flits delivered.
    pub flits: u64,
    /// Sum of measured (creation → delivery) latencies, cycles.
    pub latency_cycles: u64,
    /// Sum of measured per-packet total energy, pJ.
    pub energy_pj: f64,
    /// Measured flit-hops (packet length × head-flit hops) — the
    /// link-occupancy share this phase put on the network.
    pub flit_hops: u64,
}

impl Probe for Collector {
    fn on_link_event(&mut self, _now: Cycle, _link: u32, ev: LinkEvent) {
        match ev {
            LinkEvent::Corrupt => self.corrupted_flits += 1,
            LinkEvent::Retransmit => self.retransmitted_flits += 1,
            LinkEvent::RetryNak => self.retry_naks += 1,
            LinkEvent::RetryTimeout => self.retry_timeouts += 1,
            LinkEvent::Failover => self.failovers += 1,
            LinkEvent::PhyDown | LinkEvent::LinkDown | LinkEvent::Degrade => {
                self.faults_applied += 1
            }
            LinkEvent::PhyUp | LinkEvent::LinkUp => {}
        }
    }

    fn on_packet_delivered(&mut self, ev: &DeliveryEvent) {
        self.delivered_packets += 1;
        self.delivered_flits += ev.len as u64;
        if ev.tag != 0 {
            let t = ev.tag as usize;
            if self.by_tag.len() <= t {
                self.by_tag.resize(t + 1, TagStats::default());
            }
            self.by_tag[t].delivered += 1;
        }
        if !ev.measured {
            return;
        }
        self.measured_packets += 1;
        self.measured_flits += ev.len as u64;
        let latency = ev.latency() as f64;
        self.latency.push(latency);
        self.latency_hist
            .get_or_insert_with(|| Histogram::new(4.0, 2048))
            .push(latency);
        if ev.high_priority {
            self.latency_high.push(latency);
        }
        self.net_latency.push(ev.net_latency() as f64);
        self.hops.push(ev.hops as f64);
        self.energy.push(ev.total_pj());
        self.onchip_pj += ev.onchip_pj;
        self.parallel_pj += ev.parallel_pj;
        self.serial_pj += ev.serial_pj;
        if ev.baseline_locked {
            self.locked_packets += 1;
        }
        if ev.tag != 0 {
            let s = &mut self.by_tag[ev.tag as usize];
            s.packets += 1;
            s.flits += ev.len as u64;
            s.latency_cycles += ev.latency();
            s.energy_pj += ev.total_pj();
            s.flit_hops += ev.len as u64 * ev.hops as u64;
        }
    }
}

/// A fully assembled multi-chiplet network simulation.
pub struct Network {
    /// Behind a lock so the parallel driver can share it with the worker
    /// pool; the serial path uses `get_mut` and never locks. Only
    /// scripted hard faults ever take the write side (to edit routing
    /// views), and they run while the pool is parked.
    pub(crate) topo: RwLock<SystemTopology>,
    pub(crate) routing: Box<dyn Routing>,
    pub(crate) config: SimConfig,
    pub(crate) energy_model: EnergyModel,
    /// LinkId → out port on its source router (1-based).
    pub(crate) link_out_port: Vec<u16>,
    /// LinkId → in port on its destination router (1-based).
    pub(crate) link_in_port: Vec<u16>,
    /// node → ordered outgoing links (out port k+1 = element k).
    pub(crate) outport_links: Vec<Vec<LinkId>>,
    /// node → ordered incoming links (in port k+1 = element k).
    pub(crate) inport_links: Vec<Vec<LinkId>>,
    pub(crate) engine: ShardedEngine,
    /// Orchestrator-side state: collector, fault script, merge scratch.
    pub(crate) hub: Hub,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topo = self.topo.read().expect("topology lock poisoned");
        f.debug_struct("Network")
            .field("kind", &topo.kind())
            .field("nodes", &topo.geometry().nodes())
            .field("shards", &self.engine.nshards())
            .field("now", &self.engine.now())
            .field("live_packets", &self.engine.live_packets())
            .finish()
    }
}

impl Network {
    /// Assembles a network for `topo` with the given routing algorithm.
    ///
    /// The network is partitioned into up to
    /// [`SimConfig::shard_threads`] chiplet-group shards (capped by the
    /// chiplet count); results are bit-identical at every shard count.
    ///
    /// # Panics
    ///
    /// Panics if the routing algorithm requires more VCs than the config
    /// provides.
    pub fn new(topo: SystemTopology, routing: Box<dyn Routing>, config: SimConfig) -> Self {
        assert!(
            config.vcs >= routing.min_vcs(),
            "{} needs {} VCs, config has {}",
            routing.name(),
            routing.min_vcs(),
            config.vcs
        );
        let n = topo.geometry().nodes() as usize;
        let phy = config.phy_params();
        let serial = config.serial_params_scaled();

        let mut routers: Vec<Router> = (0..n).map(|_| Router::new(config.vcs)).collect();
        let mut media = Vec::with_capacity(topo.links().len());
        let mut credit_lines = Vec::with_capacity(topo.links().len());
        let mut link_out_port = vec![0u16; topo.links().len()];
        let mut link_in_port = vec![0u16; topo.links().len()];
        let mut outport_links: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        let mut inport_links: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        // Fault machinery: one RNG stream per hetero-PHY injector, one
        // per-link corruption probability for retry-guarded links. Both
        // stay inert (no RNG ever drawn) while every probability is zero.
        let mut inj_rng = SimRng::seed(config.seed ^ 0xB17_E4404);
        let mut link_ps = vec![0.0f64; topo.links().len()];

        // Port 0 on every router: injection (in) / ejection (out).
        for r in routers.iter_mut() {
            r.add_in_port(config.inj_vc_depth);
            r.add_out_port(config.eject_bandwidth, 0, true);
        }

        for link in topo.links() {
            let (bw, lat, in_depth) = match link.class {
                LinkClass::OnChip => (
                    config.onchip.bandwidth,
                    config.onchip.latency,
                    config.onchip_vc_depth,
                ),
                LinkClass::Parallel => (
                    phy.parallel_bw,
                    config.parallel.latency,
                    config.iface_vc_depth,
                ),
                LinkClass::Serial => (serial.bandwidth, serial.latency, config.iface_vc_depth),
                LinkClass::HeteroPhy => (phy.total_bw(), 0, config.iface_vc_depth),
            };
            // Input port on the destination router.
            let in_port = routers[link.dst.index()].add_in_port(in_depth);
            link_in_port[link.id.index()] = in_port;
            inport_links[link.dst.index()].push(link.id);
            debug_assert_eq!(in_port as usize, inport_links[link.dst.index()].len());
            // Output port on the source router, crediting the destination's
            // buffer depth. The §4.1 higher-radix crossbar lets interface
            // ports take `bw` flits/cycle from the internal ports; without
            // it they are fed at on-chip speed like a traditional router.
            let port_bw = if config.higher_radix_crossbar || !link.class.is_interface() {
                bw
            } else {
                bw.min(config.onchip.bandwidth)
            };
            let out_port = routers[link.src.index()].add_out_port(port_bw, in_depth, false);
            link_out_port[link.id.index()] = out_port;
            outport_links[link.src.index()].push(link.id);
            debug_assert_eq!(out_port as usize, outport_links[link.src.index()].len());
            // The medium. Plain latencies get +1 for the transmission
            // stage; the hetero adapter's dispatch cycle plays that role
            // for hetero-PHY links. With the fault model armed, interface
            // links get the CRC/replay retry layer (error-free it is
            // cycle-for-cycle identical to the plain pipeline) and
            // hetero-PHY links a BER injector; on-chip wires never fault.
            let medium = match link.class {
                LinkClass::HeteroPhy => {
                    let mut l = HeteroPhyLink::new(phy, config.phy_policy, config.adapter_fifo);
                    l.set_bypass_enabled(config.adapter_bypass);
                    if config.fault.armed() {
                        l.set_fault_injection(
                            inj_rng.fork(link.id.index() as u64),
                            config.fault.p_flit_parallel(),
                            config.fault.p_flit_serial(),
                        );
                    }
                    Medium::Hetero(Box::new(l))
                }
                class if config.fault.armed() && class.is_interface() => {
                    link_ps[link.id.index()] = match class {
                        LinkClass::Parallel => config.fault.p_flit_parallel(),
                        _ => config.fault.p_flit_serial(),
                    };
                    Medium::Guarded {
                        line: RetryLine::new(lat + 1, bw, config.fault.retry_timeout),
                        class,
                    }
                }
                class => Medium::Plain {
                    line: DelayLine::new(lat + 1, bw),
                    class,
                },
            };
            media.push(medium);
            let credit_lat = match link.class {
                LinkClass::OnChip => config.onchip.latency,
                LinkClass::Parallel | LinkClass::HeteroPhy => config.parallel.latency,
                LinkClass::Serial => serial.latency,
            };
            credit_lines.push(CreditLine::new(credit_lat.max(1)));
        }

        let part = Partition::new(&topo, config.resolved_shard_threads());
        let mut engine =
            ShardedEngine::new(routers, media, credit_lines, &link_ps, config.seed, part);
        // Precompute route tables for small systems so the RC stage never
        // walks a routing algorithm at runtime — scoped per shard to the
        // nodes it owns (prefill no-ops above its node threshold; those
        // fill lazily).
        engine.prefill_route_tables(routing.as_ref(), &topo);
        Self {
            topo: RwLock::new(topo),
            routing,
            config,
            energy_model: EnergyModel::default(),
            link_out_port,
            link_in_port,
            outport_links,
            inport_links,
            engine,
            hub: Hub::new(),
        }
    }

    /// The topology this network was built from (a read guard; hold it
    /// only briefly — scripted hard faults take the write side).
    pub fn topology(&self) -> impl std::ops::Deref<Target = SystemTopology> + '_ {
        self.topo.read().expect("topology lock poisoned")
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The number of chiplet-group shards the cycle loop runs over
    /// (1 = serial; capped by the topology's chiplet count).
    pub fn num_shards(&self) -> usize {
        self.engine.nshards()
    }

    /// Cycles in which each shard moved something. With one shard this is
    /// the network-wide activity count; with many it shows the per-shard
    /// load balance.
    pub fn shard_active_cycles(&self) -> Vec<u64> {
        self.engine.shard_active_cycles()
    }

    /// Replaces the energy model (default: [`EnergyModel::default`]).
    pub fn set_energy_model(&mut self, m: EnergyModel) {
        self.energy_model = m;
    }

    /// Installs a fault script. Events fire as simulated time reaches
    /// them: each is applied at the start of its cycle, before that cycle
    /// is simulated. Replaces any previously installed script; events
    /// already in the past fire on the next step.
    pub fn set_fault_script(&mut self, script: FaultScript) {
        self.hub.script = script;
        self.hub.script_pos = 0;
    }

    /// Whether this run injects faults: a nonzero error rate or a fault
    /// script. A watchdog abort under active faults is a fault stall
    /// (traffic wedged on failed hardware), not a routing deadlock. The
    /// retry layer alone at BER = 0 does not count — it never perturbs an
    /// error-free run.
    pub fn faults_active(&self) -> bool {
        self.config.fault.ber_serial > 0.0
            || self.config.fault.ber_parallel > 0.0
            || !self.hub.script.is_empty()
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.engine.now()
    }

    /// The statistics collector.
    pub fn collector(&self) -> &Collector {
        &self.hub.collector
    }

    /// Flits delivered over each directed link so far (indexed by
    /// [`LinkId`]); divide by `cycles × bandwidth` for utilization.
    pub fn link_flits(&self) -> Vec<u64> {
        self.engine.link_flits()
    }

    /// Starts the measurement window: packets created from now on are
    /// recorded in the measured statistics.
    pub fn start_measurement(&mut self) {
        self.engine.start_measurement();
        if let Some(ring) = self.hub.trace.as_mut() {
            ring.push(TraceEvent {
                cycle: self.engine.now(),
                kind: TraceKind::Phase,
                pid: NO_PID,
                a: 1, // warm-up → measure
                b: 0,
            });
        }
    }

    /// Turns the metrics layer on: registers the hot-path metrics (per-
    /// hetero-link ROB occupancy gauges, per-PHY dispatch counters) and
    /// installs a private cell slice in every shard. Until this is
    /// called, no shard holds a slice and every sampling site is a
    /// single `is_some` check. Idempotent; metrics are purely
    /// observational, so results stay bit-identical either way.
    pub fn enable_metrics(&mut self) {
        if self.hub.metrics.is_some() {
            return;
        }
        let mut reg = MetricsRegistry::new();
        let rob_gauge = {
            let topo = self.topo.get_mut().expect("topology lock poisoned");
            let mut v = vec![None; topo.links().len()];
            for link in topo.links() {
                if link.class == LinkClass::HeteroPhy {
                    let label = link.id.index().to_string();
                    v[link.id.index()] = Some(reg.gauge("rob_occupancy_max", &[("link", &label)]));
                }
            }
            v
        };
        let phy_dispatch = [
            reg.counter("phy_dispatch_total", &[("phy", "parallel")]),
            reg.counter("phy_dispatch_total", &[("phy", "serial")]),
        ];
        let ids = MetricIds {
            rob_gauge,
            phy_dispatch,
        };
        self.engine.set_metrics(&ids, &reg);
        self.hub.metrics = Some(reg);
        self.hub.observe_barriers = true;
    }

    /// Turns structured tracing on: every shard gets an accumulation
    /// buffer and the hub a bounded ring holding the most recent `cap`
    /// events of the kinds in `filter`. Tracing is purely observational —
    /// the golden instrumented matrix pins results bit-identical with it
    /// on or off, at every thread count.
    pub fn enable_trace(&mut self, cap: usize, filter: TraceFilter) {
        self.engine.set_tracing(filter);
        self.hub.trace = Some(TraceRing::new(cap, filter));
        if filter.accepts(TraceKind::Barrier) {
            self.hub.observe_barriers = true;
        }
    }

    /// The trace ring, when tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.hub.trace.as_ref()
    }

    /// Builds a complete metrics snapshot: the hot-path cells folded over
    /// every shard (ascending shard order), plus every quantity the
    /// engine and collector already maintain (per-link flit counters,
    /// delivery totals, the latency histogram) copied in at zero hot-path
    /// cost. Wall-clock and thread-count-dependent values (per-shard
    /// activity, barrier waits) are marked volatile so
    /// [`MetricsSnapshot::deterministic_lines`] excludes them.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = match &self.hub.metrics {
            Some(reg) => self.engine.fold_shard_metrics(reg),
            None => MetricsSnapshot::default(),
        };
        let c = &self.hub.collector;
        let counter = MetricKind::Counter;
        snap.push_scalar("cycles_total", &[], counter, false, self.engine.now());
        snap.push_scalar(
            "packets_delivered_total",
            &[],
            counter,
            false,
            c.delivered_packets,
        );
        snap.push_scalar(
            "flits_delivered_total",
            &[],
            counter,
            false,
            c.delivered_flits,
        );
        snap.push_scalar(
            "packets_measured_total",
            &[],
            counter,
            false,
            c.measured_packets,
        );
        snap.push_scalar(
            "flits_measured_total",
            &[],
            counter,
            false,
            c.measured_flits,
        );
        snap.push_scalar(
            "packets_baseline_locked_total",
            &[],
            counter,
            false,
            c.locked_packets,
        );
        snap.push_scalar(
            "flits_corrupted_total",
            &[],
            counter,
            false,
            c.corrupted_flits,
        );
        snap.push_scalar(
            "flits_retransmitted_total",
            &[],
            counter,
            false,
            c.retransmitted_flits,
        );
        snap.push_scalar("retry_naks_total", &[], counter, false, c.retry_naks);
        snap.push_scalar(
            "retry_timeouts_total",
            &[],
            counter,
            false,
            c.retry_timeouts,
        );
        snap.push_scalar("failovers_total", &[], counter, false, c.failovers);
        snap.push_scalar(
            "faults_applied_total",
            &[],
            counter,
            false,
            c.faults_applied,
        );
        // Per-phase attribution: emitted only when tagged traffic ran, so
        // untagged runs keep their metric lines byte-identical.
        for (tag, s) in c.by_tag.iter().enumerate() {
            if tag == 0 {
                continue;
            }
            let label = tag.to_string();
            let phase = [("phase", label.as_str())];
            snap.push_scalar(
                "phase_packets_delivered_total",
                &phase,
                counter,
                false,
                s.delivered,
            );
            snap.push_scalar(
                "phase_packets_measured_total",
                &phase,
                counter,
                false,
                s.packets,
            );
            snap.push_scalar(
                "phase_flits_measured_total",
                &phase,
                counter,
                false,
                s.flits,
            );
            snap.push_scalar(
                "phase_latency_cycles_total",
                &phase,
                counter,
                false,
                s.latency_cycles,
            );
            snap.push_scalar(
                "phase_energy_pj_total",
                &phase,
                counter,
                false,
                s.energy_pj.round() as u64,
            );
            snap.push_scalar("phase_flit_hops_total", &phase, counter, false, s.flit_hops);
        }
        for (li, n) in self.engine.link_flits().iter().enumerate() {
            let label = li.to_string();
            snap.push_scalar(
                "link_flits_forwarded_total",
                &[("link", &label)],
                counter,
                false,
                *n,
            );
        }
        if let Some(h) = &c.latency_hist {
            // Bucket geometry fixed by the collector: 4-cycle buckets.
            snap.push_histogram(
                "packet_latency_cycles",
                &[],
                4.0,
                (0..h.buckets()).map(|i| h.bucket_count(i)).collect(),
                h.overflow(),
            );
        }
        for (sid, n) in self.engine.shard_active_cycles().iter().enumerate() {
            let label = sid.to_string();
            snap.push_scalar(
                "shard_active_cycles",
                &[("shard", &label)],
                counter,
                true,
                *n,
            );
        }
        snap.push_scalar(
            "barrier_wait_ns_total",
            &[],
            counter,
            true,
            self.hub.barrier_wait_ns,
        );
        if let Some(ring) = &self.hub.trace {
            snap.push_scalar("trace_dropped_total", &[], counter, true, ring.dropped());
        }
        snap
    }

    /// Queues a packet for injection at its source NIC.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or a node id is out of range.
    pub fn offer(&mut self, req: PacketRequest) -> PacketId {
        self.engine.offer(req)
    }

    /// Packets alive anywhere in the system (queued, in flight).
    pub fn live_packets(&self) -> usize {
        self.engine.live_packets()
    }

    /// In-flight flits across every shard arena. A drained network (no
    /// live packets) must report zero — anything else is a leaked handle.
    pub fn flits_in_flight(&self) -> usize {
        self.engine.flits_in_flight()
    }

    /// Total flit handles ever allocated across every shard arena.
    pub fn flits_allocated_total(&self) -> u64 {
        self.engine.flits_allocated_total()
    }

    /// Total packets waiting in source queues (not yet fully injected).
    pub fn queued_packets(&self) -> usize {
        self.engine.queued_packets()
    }

    /// Cycles since anything moved — a growing value with live packets
    /// indicates deadlock (used by the simulation watchdog).
    pub fn idle_cycles(&self) -> Cycle {
        self.engine.now() - self.hub.last_activity
    }

    /// The earliest cycle ≥ [`Self::now`] at which this network can make
    /// progress, or [`Cycle::MAX`] if nothing is scheduled: the engine's
    /// own bound (active routers/NICs/mailboxes pin it to now; in-flight
    /// link and credit traffic contributes its earliest due) combined
    /// with the next unapplied fault-script event.
    pub fn next_event(&mut self) -> Cycle {
        let now = self.engine.now();
        let mut at = self.engine.next_event(now);
        if let Some(tf) = self.hub.script.events().get(self.hub.script_pos) {
            at = at.min(tf.at.max(now));
        }
        at
    }

    /// Advances the clock one cycle without simulating it. Sound only
    /// while [`Self::next_event`] is in the future — the elided step
    /// would have been a total no-op except the clock advance. The
    /// idle-skip loop in [`crate::sim`] is the caller.
    pub fn tick_idle(&mut self) {
        self.engine.tick_idle();
    }

    /// Runs one simulation cycle.
    pub fn step(&mut self) {
        self.step_probed(&mut []);
    }

    /// Runs one simulation cycle on the calling thread (both phases over
    /// every shard in order — any shard count), reporting deliveries and
    /// flit hops to `probes` (in addition to the built-in [`Collector`]).
    ///
    /// Probes are passive: attaching any combination of them leaves the
    /// simulated behavior bit-identical.
    pub fn step_probed(&mut self, probes: &mut [&mut dyn Probe]) {
        while self.hub.script_pos < self.hub.script.events().len()
            && self.hub.script.events()[self.hub.script_pos].at <= self.engine.now()
        {
            let tf = self.hub.script.events()[self.hub.script_pos];
            self.hub.script_pos += 1;
            apply_fault(
                &self.topo,
                self.routing.as_ref(),
                &self.engine,
                &mut self.hub,
                tf,
                probes,
            );
        }
        let topo = &*self.topo.get_mut().expect("topology lock poisoned");
        let ctx = EngineCtx {
            topo,
            routing: self.routing.as_ref(),
            config: &self.config,
            energy_model: &self.energy_model,
            link_out_port: &self.link_out_port,
            link_in_port: &self.link_in_port,
            outport_links: &self.outport_links,
            inport_links: &self.inport_links,
        };
        self.engine.step_serial(&ctx, &mut self.hub, probes);
    }
}

/// Resolves one scripted fault's target to concrete links and applies
/// it: hetero-PHY adapters fail over / restore / burst in place; plain
/// and retry-guarded links are blocked, unblocked, burst or lane-capped;
/// hard failures additionally filter the routing tables where the
/// topology allows (the mesh escape network must survive).
///
/// A free function over the shared pieces so both drivers can call it:
/// the serial path from [`Network::step_probed`], the parallel path from
/// the pool leader between cycles (every shard is locked up front, which
/// is free — the workers are parked whenever this runs).
pub(crate) fn apply_fault(
    topo: &RwLock<SystemTopology>,
    routing: &dyn Routing,
    engine: &ShardedEngine,
    hub: &mut Hub,
    tf: TimedFault,
    probes: &mut [&mut dyn Probe],
) {
    let hard = matches!(
        tf.event,
        FaultEvent::PhyDown(_) | FaultEvent::PhyUp(_) | FaultEvent::LinkDown | FaultEvent::LinkUp
    );
    let mut links = std::mem::take(&mut hub.fault_links);
    links.clear();
    {
        let t = topo.read().expect("topology lock poisoned");
        links.extend(t.links().iter().filter_map(|l| {
            let hit = match tf.target {
                FaultTarget::All => l.class.is_interface(),
                FaultTarget::Link(id) => l.id.0 == id,
                FaultTarget::Class(c) => l.class == c,
            };
            hit.then_some(l.id)
        }));
        if hard {
            // Hard failures are physical and bidirectional: take each
            // targeted link's reverse pair along.
            let direct = links.len();
            for i in 0..direct {
                if let Some(rev) = t.reverse_of(links[i]) {
                    if !links.contains(&rev) {
                        links.push(rev);
                    }
                }
            }
            links.sort_by_key(|l| l.0);
        }
    }
    let now = engine.now();
    let mut emitted = std::mem::take(&mut hub.fault_emitted);
    emitted.clear();
    // Set when a hard event actually edits the topology's routing
    // lookup tables; cached routes are stale from that point.
    let mut reroute = false;
    {
        let mut guards: Vec<_> = engine
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned"))
            .collect();
        for &id in &links {
            let li = id.index();
            let sh: &mut Shard = &mut guards[engine.part.link_owner[li] as usize];
            match tf.event {
                FaultEvent::PhyDown(kind) => match sh.media[li].as_mut().expect("owner") {
                    Medium::Hetero(h) => {
                        h.fail_phy(kind);
                        emitted.push((li as u32, LinkEvent::PhyDown));
                        let other = match kind {
                            PhyKind::Parallel => PhyKind::Serial,
                            PhyKind::Serial => PhyKind::Parallel,
                        };
                        if !h.phy_down(other) {
                            // The surviving PHY keeps the link alive.
                            emitted.push((li as u32, LinkEvent::Failover));
                        }
                    }
                    Medium::Plain { class, .. } | Medium::Guarded { class, .. }
                        if class_matches(*class, kind) =>
                    {
                        sh.faults.set_blocked(li, true);
                        reroute |= topo
                            .write()
                            .expect("topology lock poisoned")
                            .set_pair_down(id, true);
                        emitted.push((li as u32, LinkEvent::PhyDown));
                    }
                    _ => {}
                },
                FaultEvent::PhyUp(kind) => match sh.media[li].as_mut().expect("owner") {
                    Medium::Hetero(h) => {
                        h.restore_phy(kind);
                        emitted.push((li as u32, LinkEvent::PhyUp));
                    }
                    Medium::Plain { class, .. } | Medium::Guarded { class, .. }
                        if class_matches(*class, kind) =>
                    {
                        sh.faults.set_blocked(li, false);
                        reroute |= topo
                            .write()
                            .expect("topology lock poisoned")
                            .set_pair_down(id, false);
                        emitted.push((li as u32, LinkEvent::PhyUp));
                    }
                    _ => {}
                },
                FaultEvent::LinkDown => {
                    sh.faults.set_blocked(li, true);
                    reroute |= topo
                        .write()
                        .expect("topology lock poisoned")
                        .set_pair_down(id, true);
                    emitted.push((li as u32, LinkEvent::LinkDown));
                }
                FaultEvent::LinkUp => {
                    sh.faults.set_blocked(li, false);
                    reroute |= topo
                        .write()
                        .expect("topology lock poisoned")
                        .set_pair_down(id, false);
                    emitted.push((li as u32, LinkEvent::LinkUp));
                }
                FaultEvent::Burst { mult, duration } => {
                    let until = now + duration;
                    match sh.media[li].as_mut().expect("owner") {
                        Medium::Hetero(h) => h.set_burst(mult, until),
                        _ => sh.faults.set_burst(li, mult, until),
                    }
                }
                FaultEvent::Degrade { lanes } => {
                    sh.faults.set_lane_cap(li, Some(lanes));
                    emitted.push((li as u32, LinkEvent::Degrade));
                }
            }
        }
        if reroute {
            // The routing view changed; drop every cached route in every
            // shard and refill (lazily, or eagerly for small systems —
            // matching what build time did).
            let t = topo.read().expect("topology lock poisoned");
            for g in guards.iter_mut() {
                let sh: &mut Shard = g;
                sh.route_table.invalidate();
                sh.route_table.prefill_scoped(routing, &t, &sh.nodes);
            }
        }
        // Re-activate every touched medium (via its owner) so the next
        // media pass runs even if the link looked idle.
        for &id in &links {
            guards[engine.part.link_owner[id.index()] as usize]
                .active_media
                .insert(id.index());
        }
    }
    for &(li, ev) in &emitted {
        hub.collector.on_link_event(now, li, ev);
    }
    for p in probes.iter_mut() {
        for &(li, ev) in &emitted {
            p.on_link_event(now, li, ev);
        }
    }
    if let Some(ring) = hub.trace.as_mut() {
        // One event for the scripted fault itself, then one per link
        // transition it caused — both hub-side, so they land in the ring
        // in application order regardless of thread count.
        let target = match tf.target {
            FaultTarget::Link(id) => id,
            _ => u32::MAX,
        };
        ring.push(TraceEvent {
            cycle: now,
            kind: TraceKind::Fault,
            pid: NO_PID,
            a: target,
            b: tf.event.code(),
        });
        for &(li, ev) in &emitted {
            ring.push(TraceEvent {
                cycle: now,
                kind: TraceKind::Link,
                pid: NO_PID,
                a: li,
                b: link_event_code(ev),
            });
        }
    }
    hub.fault_links = links;
    hub.fault_emitted = emitted;
}

/// Whether a homogeneous link of `class` is carried by PHY family `kind`
/// (and therefore dies with it).
fn class_matches(class: LinkClass, kind: PhyKind) -> bool {
    matches!(
        (class, kind),
        (LinkClass::Parallel, PhyKind::Parallel) | (LinkClass::Serial, PhyKind::Serial)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_noc::{OrderClass, Priority};
    use chiplet_topo::{build, routing, Geometry, NodeId, SystemKind};

    fn small_net(kind: SystemKind) -> Network {
        let geom = Geometry::new(2, 2, 2, 2);
        let topo = match kind {
            SystemKind::ParallelMesh => build::parallel_mesh(geom),
            SystemKind::SerialTorus => build::serial_torus(geom),
            SystemKind::HeteroPhyTorus => build::hetero_phy_torus(geom),
            SystemKind::SerialHypercube => build::serial_hypercube(geom),
            SystemKind::HeteroChannel => build::hetero_channel(geom),
            SystemKind::MultiPackageRow => build::multi_package(
                geom.chiplets_x(),
                1,
                geom.chiplets_y(),
                geom.chip_w(),
                geom.chip_h(),
            ),
        };
        let r = routing::for_system(kind, 2);
        Network::new(topo, r, SimConfig::default())
    }

    fn run_until_drained(net: &mut Network, max_cycles: u64) {
        let mut cycles = 0;
        while net.live_packets() > 0 {
            net.step();
            cycles += 1;
            assert!(
                cycles < max_cycles,
                "not drained after {max_cycles} cycles ({} live)",
                net.live_packets()
            );
            assert!(net.idle_cycles() < 2_000, "deadlock suspected");
        }
    }

    #[test]
    fn single_packet_crosses_mesh() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(3, 3), 16));
        run_until_drained(&mut net, 500);
        let c = net.collector();
        assert_eq!(c.delivered_packets, 1);
        assert_eq!(c.delivered_flits, 16);
        assert_eq!(c.measured_packets, 1);
        assert_eq!(c.hops.mean(), 6.0);
        // Zero-load latency sanity: 6 hops, 2 of them parallel interfaces.
        let lat = c.latency.mean();
        assert!(lat > 20.0 && lat < 80.0, "latency {lat}");
    }

    #[test]
    fn every_preset_delivers_all_pairs_sample() {
        use simkit::SimRng;
        for kind in [
            SystemKind::ParallelMesh,
            SystemKind::SerialTorus,
            SystemKind::HeteroPhyTorus,
            SystemKind::SerialHypercube,
            SystemKind::HeteroChannel,
        ] {
            let mut net = small_net(kind);
            let n = net.topology().geometry().nodes() as u64;
            let mut rng = SimRng::seed(99);
            for _ in 0..60 {
                let s = rng.below(n) as u32;
                let mut d = rng.below(n) as u32;
                while d == s {
                    d = rng.below(n) as u32;
                }
                net.offer(PacketRequest::new(NodeId(s), NodeId(d), 16));
            }
            run_until_drained(&mut net, 20_000);
            assert_eq!(net.collector().delivered_packets, 60, "{kind}");
            assert_eq!(net.collector().delivered_flits, 60 * 16, "{kind}");
        }
    }

    #[test]
    fn energy_counters_track_link_classes() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        // 1 on-chip hop.
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(1, 0), 4));
        // 1 parallel hop (chiplet boundary).
        net.offer(PacketRequest::new(g.node_at(1, 0), g.node_at(2, 0), 4));
        run_until_drained(&mut net, 1_000);
        let c = net.collector();
        // 4 flits on-chip + 4 flits parallel.
        let expected_onchip = 4.0 * 64.0 * 0.10;
        let expected_parallel = 4.0 * 64.0 * 1.0;
        assert!(
            (c.onchip_pj - expected_onchip).abs() < 1e-9,
            "{}",
            c.onchip_pj
        );
        assert!(
            (c.parallel_pj - expected_parallel).abs() < 1e-9,
            "{}",
            c.parallel_pj
        );
        assert_eq!(c.serial_pj, 0.0);
    }

    #[test]
    fn hetero_phy_uses_serial_under_burst() {
        let mut net = small_net(SystemKind::HeteroPhyTorus);
        let g = *net.topology().geometry();
        // Several flows converge on the boundary router at (1,0): the
        // higher-radix crossbar feeds the interface faster than the
        // parallel PHY drains, so the balanced policy enables the serial
        // PHY (a single source can never exceed the parallel bandwidth).
        for _ in 0..8 {
            net.offer(PacketRequest::new(g.node_at(1, 0), g.node_at(2, 0), 16));
            net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(3, 0), 16));
            net.offer(PacketRequest::new(g.node_at(1, 1), g.node_at(2, 0), 16));
        }
        run_until_drained(&mut net, 5_000);
        let c = net.collector();
        assert_eq!(c.delivered_packets, 24);
        assert!(
            c.serial_pj > 0.0,
            "balanced policy should spill to serial under convergent bursts"
        );
        assert!(c.parallel_pj > 0.0);
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(3, 0), 8));
        for _ in 0..5 {
            net.step();
        }
        net.start_measurement();
        net.offer(PacketRequest::new(g.node_at(0, 1), g.node_at(3, 1), 8));
        run_until_drained(&mut net, 2_000);
        let c = net.collector();
        assert_eq!(c.delivered_packets, 2);
        assert_eq!(c.measured_packets, 1);
    }

    #[test]
    fn unordered_bulk_delivers_completely() {
        let mut net = small_net(SystemKind::HeteroPhyTorus);
        let g = *net.topology().geometry();
        for i in 0..10 {
            net.offer(PacketRequest {
                src: g.node_at(i % 4, 0),
                dst: g.node_at(3 - i % 4, 3),
                len: 16,
                class: OrderClass::Unordered,
                priority: if i % 3 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                },
                tag: 0,
            });
        }
        run_until_drained(&mut net, 10_000);
        assert_eq!(net.collector().delivered_packets, 10);
    }

    #[test]
    fn attached_probes_observe_the_run() {
        use simkit::probe::{LinkUtilProbe, ProgressProbe};
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(3, 3), 16));
        let mut links = LinkUtilProbe::new(net.topology().links().len(), 16);
        let mut progress = ProgressProbe::new(1);
        let mut cycles = 0;
        while net.live_packets() > 0 {
            net.step_probed(&mut [&mut links, &mut progress]);
            cycles += 1;
            assert!(cycles < 500);
        }
        // The link probe saw exactly the flit-hops the network counted.
        assert_eq!(links.totals(), net.link_flits());
        assert_eq!(
            links.totals().iter().sum::<u64>(),
            links.bins().iter().sum::<u64>()
        );
        // ProgressProbe::on_cycle is driven by the run loop, not step();
        // here we only check it stayed silent without on_cycle calls.
        assert!(progress.snapshots().is_empty());
    }

    #[test]
    fn multi_shard_serial_step_matches_single_shard() {
        // The same traffic through a 1-shard and a 4-shard build of the
        // same system must produce identical statistics — the partition
        // is results-invisible by construction.
        let run = |threads: usize| {
            let geom = Geometry::new(2, 2, 2, 2);
            let topo = build::hetero_phy_torus(geom);
            let r = routing::for_system(SystemKind::HeteroPhyTorus, 2);
            let mut net = Network::new(topo, r, SimConfig::default().with_shard_threads(threads));
            let mut rng = SimRng::seed(7);
            let n = geom.nodes() as u64;
            for _ in 0..40 {
                let s = rng.below(n) as u32;
                let mut d = rng.below(n) as u32;
                while d == s {
                    d = rng.below(n) as u32;
                }
                net.offer(PacketRequest::new(NodeId(s), NodeId(d), 16));
            }
            run_until_drained(&mut net, 20_000);
            (
                net.now(),
                net.collector().delivered_packets,
                net.collector().latency.mean(),
                net.collector().hops.mean(),
                net.link_flits(),
            )
        };
        let serial = run(1);
        let sharded = run(4);
        assert!(serial.0 > 0);
        assert_eq!(serial, sharded);
    }

    #[test]
    #[should_panic]
    fn self_addressed_packet_rejected() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(0, 0), 1));
    }
}

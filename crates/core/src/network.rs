//! Network assembly and the per-cycle simulation engine.
//!
//! A [`Network`] instantiates one router per node of a
//! [`SystemTopology`], one medium per directed link (a plain
//! [`DelayLine`] for on-chip/parallel/serial links, a
//! [`HeteroPhyLink`] for hetero-PHY links), the reverse credit lines, and
//! per-node NICs (injection queues + ejection accounting). Each cycle:
//!
//! 1. credits that completed their return trip are restored;
//! 2. media deliver arrived flits into input buffers (hetero-PHY adapters
//!    also run their dispatch/reorder stages);
//! 3. NICs stream queued packets into injection ports;
//! 4. every router runs its RC/VA/SA pipeline, transmitting flits into the
//!    media and returning credits upstream.
//!
//! Flit-hop energy counters and packet statistics are recorded at delivery
//! and ejection respectively.

use crate::config::SimConfig;
use crate::energy::{EnergyModel, PacketEnergy};
use chiplet_noc::{
    CreditLine, DelayLine, Flit, PacketId, PacketInfo, PacketStore, PortCandidate, Router,
    RouterEnv,
};
use chiplet_phy::{HeteroPhyLink, PhyKind};
use chiplet_topo::routing::{Candidate, Routing};
use chiplet_topo::{LinkClass, LinkId, NodeId, SystemTopology};
use chiplet_traffic::PacketRequest;
use simkit::stats::{Histogram, Running};
use simkit::Cycle;
use std::collections::VecDeque;

/// One directed link's physical medium.
#[derive(Debug)]
enum Medium {
    Plain { line: DelayLine, class: LinkClass },
    Hetero(Box<HeteroPhyLink>),
}

#[derive(Debug, Clone, Copy)]
struct InjectState {
    pid: PacketId,
    next_seq: u16,
    vc: u8,
    len: u16,
}

#[derive(Debug, Default)]
struct Nic {
    queue: VecDeque<PacketId>,
    cur: Option<InjectState>,
}

/// Statistics accumulated over delivered packets.
#[derive(Debug, Default, Clone)]
pub struct Collector {
    /// Packets created at or after this cycle contribute to the measured
    /// statistics (warm-up exclusion).
    pub measure_from: Cycle,
    /// Total (creation → delivery) packet latency.
    pub latency: Running,
    /// Network (injection → delivery) packet latency.
    pub net_latency: Running,
    /// Latency of high-priority packets only (application-aware
    /// scheduling metrics, §5.3.2).
    pub latency_high: Running,
    /// Latency distribution (4-cycle buckets up to 8192, for percentiles).
    pub latency_hist: Option<Histogram>,
    /// Head-flit hop counts.
    pub hops: Running,
    /// Per-packet total energy, pJ.
    pub energy: Running,
    /// Sum of on-chip energy over measured packets, pJ.
    pub onchip_pj: f64,
    /// Sum of parallel-interface energy, pJ.
    pub parallel_pj: f64,
    /// Sum of serial-interface energy, pJ.
    pub serial_pj: f64,
    /// All packets delivered (measured or not).
    pub delivered_packets: u64,
    /// All flits delivered.
    pub delivered_flits: u64,
    /// Measured packets delivered.
    pub measured_packets: u64,
    /// Measured flits delivered.
    pub measured_flits: u64,
    /// Measured packets that hit the livelock baseline lock.
    pub locked_packets: u64,
}

struct NetEnv<'a> {
    now: Cycle,
    node: NodeId,
    topo: &'a SystemTopology,
    routing: &'a dyn Routing,
    store: &'a mut PacketStore,
    media: &'a mut [Medium],
    credit_lines: &'a mut [CreditLine],
    /// out_port (1-based; 0 is ejection) → LinkId, per this node.
    outport_link: &'a [LinkId],
    /// in_port (1-based; 0 is injection) → LinkId, per this node.
    inport_link: &'a [LinkId],
    vcs: u8,
    eject_budget: u16,
    collector: &'a mut Collector,
    energy_model: &'a EnergyModel,
    scratch: Vec<Candidate>,
    activity: &'a mut bool,
}

impl<'a> RouterEnv for NetEnv<'a> {
    fn route(&mut self, pid: PacketId, out: &mut Vec<PortCandidate>) {
        let info = self.store.get(pid);
        if info.dst == self.node {
            for vc in 0..self.vcs {
                out.push(PortCandidate {
                    out_port: 0,
                    vc,
                    baseline: true,
                    tier: 0,
                });
            }
            return;
        }
        self.scratch.clear();
        self.routing
            .candidates(self.topo, self.node, info.dst, &info.route, &mut self.scratch);
        debug_assert!(
            !self.scratch.is_empty(),
            "no route from {} to {}",
            self.node,
            info.dst
        );
        for c in &self.scratch {
            // Links leaving this node occupy out ports 1.. in adjacency
            // order; find the port for this link.
            let port = self
                .outport_link
                .iter()
                .position(|&l| l == c.link)
                .expect("candidate link leaves this node") as u16
                + 1;
            out.push(PortCandidate {
                out_port: port,
                vc: c.vc,
                baseline: c.baseline,
                tier: c.tier,
            });
        }
    }

    fn out_capacity(&mut self, out_port: u16) -> u16 {
        if out_port == 0 {
            return self.eject_budget;
        }
        let link = self.outport_link[(out_port - 1) as usize];
        match &mut self.media[link.index()] {
            Medium::Plain { line, .. } => line.capacity(self.now) as u16,
            Medium::Hetero(h) => h.space(),
        }
    }

    fn send(&mut self, out_port: u16, flit: Flit) {
        *self.activity = true;
        if out_port == 0 {
            debug_assert!(self.eject_budget > 0);
            self.eject_budget -= 1;
            let now = self.now;
            let info = self.store.get_mut(flit.pid);
            debug_assert_eq!(info.dst, self.node, "flit ejected at wrong node");
            debug_assert_eq!(info.ejected, flit.seq, "out-of-order ejection");
            info.ejected += 1;
            self.collector.delivered_flits += 1;
            if flit.last {
                debug_assert_eq!(info.ejected, info.len, "flit loss detected");
                self.collector.delivered_packets += 1;
                if info.created >= self.collector.measure_from {
                    let e: PacketEnergy = self.energy_model.packet(info);
                    self.collector.measured_packets += 1;
                    self.collector.measured_flits += info.len as u64;
                    self.collector.latency.push((now - info.created) as f64);
                    self.collector
                        .latency_hist
                        .get_or_insert_with(|| Histogram::new(4.0, 2048))
                        .push((now - info.created) as f64);
                    if info.priority == chiplet_noc::Priority::High {
                        self.collector.latency_high.push((now - info.created) as f64);
                    }
                    self.collector
                        .net_latency
                        .push((now - info.injected) as f64);
                    self.collector.hops.push(info.hops as f64);
                    self.collector.energy.push(e.total_pj());
                    self.collector.onchip_pj += e.onchip_pj;
                    self.collector.parallel_pj += e.parallel_pj;
                    self.collector.serial_pj += e.serial_pj;
                    if info.route.baseline_locked {
                        self.collector.locked_packets += 1;
                    }
                }
                self.store.free(flit.pid);
            }
            return;
        }
        let link = self.outport_link[(out_port - 1) as usize];
        match &mut self.media[link.index()] {
            Medium::Plain { line, .. } => {
                let ok = line.try_send(self.now, flit);
                debug_assert!(ok, "plain link over capacity");
            }
            Medium::Hetero(h) => {
                let info = self.store.get(flit.pid);
                h.push(self.now, flit, info.class, info.priority);
            }
        }
    }

    fn credit(&mut self, in_port: u16, vc: u8) {
        if in_port == 0 {
            return; // injection port: the NIC reads buffer space directly
        }
        let link = self.inport_link[(in_port - 1) as usize];
        self.credit_lines[link.index()].send(self.now, vc);
    }

    fn note_baseline_lock(&mut self, pid: PacketId) {
        self.store.get_mut(pid).route.baseline_locked = true;
    }
}

/// A fully assembled multi-chiplet network simulation.
pub struct Network {
    topo: SystemTopology,
    routing: Box<dyn Routing>,
    config: SimConfig,
    energy_model: EnergyModel,
    routers: Vec<Router>,
    media: Vec<Medium>,
    credit_lines: Vec<CreditLine>,
    /// LinkId → out port on its source router (1-based).
    link_out_port: Vec<u16>,
    /// LinkId → in port on its destination router (1-based).
    link_in_port: Vec<u16>,
    /// node → ordered outgoing links (out port k+1 = element k).
    outport_links: Vec<Vec<LinkId>>,
    /// node → ordered incoming links (in port k+1 = element k).
    inport_links: Vec<Vec<LinkId>>,
    store: PacketStore,
    nics: Vec<Nic>,
    /// Flits delivered over each directed link (utilization analysis).
    link_flits: Vec<u64>,
    collector: Collector,
    now: Cycle,
    last_activity: Cycle,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("kind", &self.topo.kind())
            .field("nodes", &self.topo.geometry().nodes())
            .field("now", &self.now)
            .field("live_packets", &self.store.live())
            .finish()
    }
}

impl Network {
    /// Assembles a network for `topo` with the given routing algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the routing algorithm requires more VCs than the config
    /// provides.
    pub fn new(topo: SystemTopology, routing: Box<dyn Routing>, config: SimConfig) -> Self {
        assert!(
            config.vcs >= routing.min_vcs(),
            "{} needs {} VCs, config has {}",
            routing.name(),
            routing.min_vcs(),
            config.vcs
        );
        let n = topo.geometry().nodes() as usize;
        let phy = config.phy_params();
        let serial = config.serial_params_scaled();

        let mut routers: Vec<Router> = (0..n).map(|_| Router::new(config.vcs)).collect();
        let mut media = Vec::with_capacity(topo.links().len());
        let mut credit_lines = Vec::with_capacity(topo.links().len());
        let mut link_out_port = vec![0u16; topo.links().len()];
        let mut link_in_port = vec![0u16; topo.links().len()];
        let mut outport_links: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        let mut inport_links: Vec<Vec<LinkId>> = vec![Vec::new(); n];

        // Port 0 on every router: injection (in) / ejection (out).
        for r in routers.iter_mut() {
            r.add_in_port(config.inj_vc_depth);
            r.add_out_port(config.eject_bandwidth, 0, true);
        }

        for link in topo.links() {
            let (bw, lat, in_depth) = match link.class {
                LinkClass::OnChip => (
                    config.onchip.bandwidth,
                    config.onchip.latency,
                    config.onchip_vc_depth,
                ),
                LinkClass::Parallel => (
                    phy.parallel_bw,
                    config.parallel.latency,
                    config.iface_vc_depth,
                ),
                LinkClass::Serial => (serial.bandwidth, serial.latency, config.iface_vc_depth),
                LinkClass::HeteroPhy => (phy.total_bw(), 0, config.iface_vc_depth),
            };
            // Input port on the destination router.
            let in_port = routers[link.dst.index()].add_in_port(in_depth);
            link_in_port[link.id.index()] = in_port;
            inport_links[link.dst.index()].push(link.id);
            debug_assert_eq!(in_port as usize, inport_links[link.dst.index()].len());
            // Output port on the source router, crediting the destination's
            // buffer depth. The §4.1 higher-radix crossbar lets interface
            // ports take `bw` flits/cycle from the internal ports; without
            // it they are fed at on-chip speed like a traditional router.
            let port_bw = if config.higher_radix_crossbar || !link.class.is_interface() {
                bw
            } else {
                bw.min(config.onchip.bandwidth)
            };
            let out_port = routers[link.src.index()].add_out_port(port_bw, in_depth, false);
            link_out_port[link.id.index()] = out_port;
            outport_links[link.src.index()].push(link.id);
            debug_assert_eq!(out_port as usize, outport_links[link.src.index()].len());
            // The medium. Plain latencies get +1 for the transmission
            // stage; the hetero adapter's dispatch cycle plays that role
            // for hetero-PHY links.
            let medium = match link.class {
                LinkClass::HeteroPhy => {
                    let mut l = HeteroPhyLink::new(phy, config.phy_policy, config.adapter_fifo);
                    l.set_bypass_enabled(config.adapter_bypass);
                    Medium::Hetero(Box::new(l))
                }
                class => Medium::Plain {
                    line: DelayLine::new(lat + 1, bw),
                    class,
                },
            };
            media.push(medium);
            let credit_lat = match link.class {
                LinkClass::OnChip => config.onchip.latency,
                LinkClass::Parallel | LinkClass::HeteroPhy => config.parallel.latency,
                LinkClass::Serial => serial.latency,
            };
            credit_lines.push(CreditLine::new(credit_lat.max(1)));
        }

        Self {
            routing,
            config,
            energy_model: EnergyModel::default(),
            routers,
            media,
            credit_lines,
            link_out_port,
            link_in_port,
            outport_links,
            inport_links,
            store: PacketStore::new(),
            nics: (0..n).map(|_| Nic::default()).collect(),
            link_flits: vec![0; topo.links().len()],
            collector: Collector::default(),
            now: 0,
            last_activity: 0,
            topo,
        }
    }

    /// The topology this network was built from.
    pub fn topology(&self) -> &SystemTopology {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replaces the energy model (default: [`EnergyModel::default`]).
    pub fn set_energy_model(&mut self, m: EnergyModel) {
        self.energy_model = m;
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The statistics collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Flits delivered over each directed link so far (indexed by
    /// [`LinkId`]); divide by `cycles × bandwidth` for utilization.
    pub fn link_flits(&self) -> &[u64] {
        &self.link_flits
    }

    /// Starts the measurement window: packets created from now on are
    /// recorded in the measured statistics.
    pub fn start_measurement(&mut self) {
        self.collector.measure_from = self.now;
    }

    /// Queues a packet for injection at its source NIC.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or a node id is out of range.
    pub fn offer(&mut self, req: PacketRequest) -> PacketId {
        assert_ne!(req.src, req.dst, "self-addressed packet");
        let pid = self.store.alloc(PacketInfo::new(
            req.src,
            req.dst,
            req.len,
            req.class,
            req.priority,
            self.now,
        ));
        self.nics[req.src.index()].queue.push_back(pid);
        pid
    }

    /// Packets alive anywhere in the system (queued, in flight).
    pub fn live_packets(&self) -> usize {
        self.store.live()
    }

    /// Total packets waiting in source queues (not yet fully injected).
    pub fn queued_packets(&self) -> usize {
        self.nics
            .iter()
            .map(|nic| nic.queue.len() + usize::from(nic.cur.is_some()))
            .sum()
    }

    /// Cycles since anything moved — a growing value with live packets
    /// indicates deadlock (used by the simulation watchdog).
    pub fn idle_cycles(&self) -> Cycle {
        self.now - self.last_activity
    }

    /// Runs one simulation cycle.
    pub fn step(&mut self) {
        let now = self.now;
        let mut activity = false;

        // 1. Credit returns.
        for (li, line) in self.credit_lines.iter_mut().enumerate() {
            if line.in_flight() == 0 {
                continue;
            }
            let link = self.topo.link(LinkId(li as u32));
            let port = self.link_out_port[li];
            while let Some(vc) = line.pop_ready(now) {
                self.routers[link.src.index()].add_credit(port, vc);
            }
        }

        // 2. Media deliveries (+ hetero adapter stages).
        for (li, medium) in self.media.iter_mut().enumerate() {
            let link = self.topo.link(LinkId(li as u32));
            let in_port = self.link_in_port[li];
            let dst = link.dst.index();
            match medium {
                Medium::Plain { line, class } => {
                    if line.in_flight() == 0 {
                        continue;
                    }
                    while let Some(flit) = line.pop_ready(now) {
                        self.link_flits[li] += 1;
                        let info = self.store.get_mut(flit.pid);
                        match class {
                            LinkClass::OnChip => info.onchip_flits += 1,
                            LinkClass::Parallel => info.parallel_flits += 1,
                            LinkClass::Serial => info.serial_flits += 1,
                            LinkClass::HeteroPhy => unreachable!(),
                        }
                        if flit.is_head() {
                            info.hops += 1;
                        }
                        self.routers[dst].receive(in_port, flit);
                        activity = true;
                    }
                }
                Medium::Hetero(h) => {
                    h.advance(now);
                    while let Some((flit, kind)) = h.pop_delivered() {
                        self.link_flits[li] += 1;
                        let info = self.store.get_mut(flit.pid);
                        match kind {
                            PhyKind::Parallel => info.parallel_flits += 1,
                            PhyKind::Serial => info.serial_flits += 1,
                        }
                        if flit.is_head() {
                            info.hops += 1;
                        }
                        self.routers[dst].receive(in_port, flit);
                        activity = true;
                    }
                }
            }
        }

        // 3. NIC injection.
        for node in 0..self.nics.len() {
            let nic = &mut self.nics[node];
            if nic.queue.is_empty() && nic.cur.is_none() {
                continue;
            }
            let router = &mut self.routers[node];
            let mut budget = self.config.inj_bandwidth;
            while budget > 0 {
                if nic.cur.is_none() {
                    let Some(&pid) = nic.queue.front() else { break };
                    let Some(vc) =
                        (0..self.config.vcs).find(|&v| router.in_vc_idle(0, v))
                    else {
                        break;
                    };
                    nic.queue.pop_front();
                    nic.cur = Some(InjectState {
                        pid,
                        next_seq: 0,
                        vc,
                        len: self.store.get(pid).len,
                    });
                }
                let st = nic.cur.as_mut().expect("just set");
                let mut moved = false;
                while budget > 0 && st.next_seq < st.len && router.in_space(0, st.vc) > 0 {
                    if st.next_seq == 0 {
                        self.store.get_mut(st.pid).injected = now;
                    }
                    router.receive(
                        0,
                        Flit {
                            pid: st.pid,
                            seq: st.next_seq,
                            vc: st.vc,
                            last: st.next_seq + 1 == st.len,
                        },
                    );
                    st.next_seq += 1;
                    budget -= 1;
                    moved = true;
                    activity = true;
                }
                if st.next_seq == st.len {
                    nic.cur = None;
                } else if !moved {
                    break;
                }
            }
        }

        // 4. Router pipelines.
        let mut routers = std::mem::take(&mut self.routers);
        for (node, router) in routers.iter_mut().enumerate() {
            if router.is_quiescent() {
                continue;
            }
            let mut env = NetEnv {
                now,
                node: NodeId(node as u32),
                topo: &self.topo,
                routing: self.routing.as_ref(),
                store: &mut self.store,
                media: &mut self.media,
                credit_lines: &mut self.credit_lines,
                outport_link: &self.outport_links[node],
                inport_link: &self.inport_links[node],
                vcs: self.config.vcs,
                eject_budget: self.config.eject_bandwidth as u16,
                collector: &mut self.collector,
                energy_model: &self.energy_model,
                scratch: Vec::new(),
                activity: &mut activity,
            };
            router.step(now, &mut env);
        }
        self.routers = routers;

        if activity {
            self.last_activity = now;
        }
        self.now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_noc::{OrderClass, Priority};
    use chiplet_topo::{build, routing, Geometry, SystemKind};

    fn small_net(kind: SystemKind) -> Network {
        let geom = Geometry::new(2, 2, 2, 2);
        let topo = match kind {
            SystemKind::ParallelMesh => build::parallel_mesh(geom),
            SystemKind::SerialTorus => build::serial_torus(geom),
            SystemKind::HeteroPhyTorus => build::hetero_phy_torus(geom),
            SystemKind::SerialHypercube => build::serial_hypercube(geom),
            SystemKind::HeteroChannel => build::hetero_channel(geom),
            SystemKind::MultiPackageRow => {
                build::multi_package(geom.chiplets_x(), 1, geom.chiplets_y(), geom.chip_w(), geom.chip_h())
            }
        };
        let r = routing::for_system(kind, 2);
        Network::new(topo, r, SimConfig::default())
    }

    fn run_until_drained(net: &mut Network, max_cycles: u64) {
        let mut cycles = 0;
        while net.live_packets() > 0 {
            net.step();
            cycles += 1;
            assert!(
                cycles < max_cycles,
                "not drained after {max_cycles} cycles ({} live)",
                net.live_packets()
            );
            assert!(net.idle_cycles() < 2_000, "deadlock suspected");
        }
    }

    #[test]
    fn single_packet_crosses_mesh() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(3, 3), 16));
        run_until_drained(&mut net, 500);
        let c = net.collector();
        assert_eq!(c.delivered_packets, 1);
        assert_eq!(c.delivered_flits, 16);
        assert_eq!(c.measured_packets, 1);
        assert_eq!(c.hops.mean(), 6.0);
        // Zero-load latency sanity: 6 hops, 2 of them parallel interfaces.
        let lat = c.latency.mean();
        assert!(lat > 20.0 && lat < 80.0, "latency {lat}");
    }

    #[test]
    fn every_preset_delivers_all_pairs_sample() {
        use simkit::SimRng;
        for kind in [
            SystemKind::ParallelMesh,
            SystemKind::SerialTorus,
            SystemKind::HeteroPhyTorus,
            SystemKind::SerialHypercube,
            SystemKind::HeteroChannel,
        ] {
            let mut net = small_net(kind);
            let n = net.topology().geometry().nodes() as u64;
            let mut rng = SimRng::seed(99);
            for _ in 0..60 {
                let s = rng.below(n) as u32;
                let mut d = rng.below(n) as u32;
                while d == s {
                    d = rng.below(n) as u32;
                }
                net.offer(PacketRequest::new(NodeId(s), NodeId(d), 16));
            }
            run_until_drained(&mut net, 20_000);
            assert_eq!(net.collector().delivered_packets, 60, "{kind}");
            assert_eq!(net.collector().delivered_flits, 60 * 16, "{kind}");
        }
    }

    #[test]
    fn energy_counters_track_link_classes() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        // 1 on-chip hop.
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(1, 0), 4));
        // 1 parallel hop (chiplet boundary).
        net.offer(PacketRequest::new(g.node_at(1, 0), g.node_at(2, 0), 4));
        run_until_drained(&mut net, 1_000);
        let c = net.collector();
        // 4 flits on-chip + 4 flits parallel.
        let expected_onchip = 4.0 * 64.0 * 0.10;
        let expected_parallel = 4.0 * 64.0 * 1.0;
        assert!((c.onchip_pj - expected_onchip).abs() < 1e-9, "{}", c.onchip_pj);
        assert!(
            (c.parallel_pj - expected_parallel).abs() < 1e-9,
            "{}",
            c.parallel_pj
        );
        assert_eq!(c.serial_pj, 0.0);
    }

    #[test]
    fn hetero_phy_uses_serial_under_burst() {
        let mut net = small_net(SystemKind::HeteroPhyTorus);
        let g = *net.topology().geometry();
        // Several flows converge on the boundary router at (1,0): the
        // higher-radix crossbar feeds the interface faster than the
        // parallel PHY drains, so the balanced policy enables the serial
        // PHY (a single source can never exceed the parallel bandwidth).
        for _ in 0..8 {
            net.offer(PacketRequest::new(g.node_at(1, 0), g.node_at(2, 0), 16));
            net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(3, 0), 16));
            net.offer(PacketRequest::new(g.node_at(1, 1), g.node_at(2, 0), 16));
        }
        run_until_drained(&mut net, 5_000);
        let c = net.collector();
        assert_eq!(c.delivered_packets, 24);
        assert!(
            c.serial_pj > 0.0,
            "balanced policy should spill to serial under convergent bursts"
        );
        assert!(c.parallel_pj > 0.0);
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(3, 0), 8));
        for _ in 0..5 {
            net.step();
        }
        net.start_measurement();
        net.offer(PacketRequest::new(g.node_at(0, 1), g.node_at(3, 1), 8));
        run_until_drained(&mut net, 2_000);
        let c = net.collector();
        assert_eq!(c.delivered_packets, 2);
        assert_eq!(c.measured_packets, 1);
    }

    #[test]
    fn unordered_bulk_delivers_completely() {
        let mut net = small_net(SystemKind::HeteroPhyTorus);
        let g = *net.topology().geometry();
        for i in 0..10 {
            net.offer(PacketRequest {
                src: g.node_at(i % 4, 0),
                dst: g.node_at(3 - i % 4, 3),
                len: 16,
                class: OrderClass::Unordered,
                priority: if i % 3 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                },
            });
        }
        run_until_drained(&mut net, 10_000);
        assert_eq!(net.collector().delivered_packets, 10);
    }

    #[test]
    #[should_panic]
    fn self_addressed_packet_rejected() {
        let mut net = small_net(SystemKind::ParallelMesh);
        let g = *net.topology().geometry();
        net.offer(PacketRequest::new(g.node_at(0, 0), g.node_at(0, 0), 1));
    }
}

//! Injection-rate sweeps: the latency–throughput curves of Figs. 11/13/14.
//!
//! Sweeps come in two flavors with identical results:
//!
//! * [`latency_sweep`] runs the points one after another, stopping two
//!   points past saturation;
//! * [`latency_sweep_parallel`] distributes the points over a worker pool
//!   ([`std::thread::scope`], no external dependencies). Every point is
//!   an independent simulation on a fresh network with the same seed, so
//!   parallel execution is bit-identical to sequential — a post-pass
//!   re-applies the sequential early-exit rule, and workers skip points
//!   only when enough earlier points are already known saturated that the
//!   sequential sweep provably never reaches them.
//!
//! [`latency_sweep_warm_start`] additionally amortizes the warm-up: it
//! pays it once, checkpoints the warmed network and starts every point
//! from the restored state (an approximation — see its docs).

use crate::config::SimConfig;
use crate::network::Network;
use crate::presets::NetworkKind;
use crate::results::SimResults;
use crate::scheduler::SchedulingProfile;
use crate::sim::{run, run_until, RunSpec};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use simkit::Cycle;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One point of a latency–injection curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered injection rate, flits/cycle/node.
    pub rate: f64,
    /// Measured results at that rate.
    pub results: SimResults,
    /// Whether the run drained completely.
    pub drained: bool,
}

fn run_point(
    net: &mut Network,
    pattern: TrafficPattern,
    rate: f64,
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
) -> SweepPoint {
    let nodes: Vec<NodeId> = (0..net.topology().geometry().nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, pattern, rate, packet_len, seed);
    let outcome = run(net, &mut w, spec);
    SweepPoint {
        rate,
        results: outcome.results,
        drained: outcome.drained,
    }
}

/// Sweeps injection rates on fresh networks built by `build`, stopping two
/// points after saturation (the curves of Fig. 11 end just past the
/// saturation throughput). An empty `rates` list is a no-op returning no
/// points ([`sweep_endpoints`] handles the empty curve without panicking).
pub fn latency_sweep(
    mut build: impl FnMut() -> Network,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    let mut past_saturation = 0;
    for &rate in rates {
        let mut net = build();
        let point = run_point(&mut net, pattern, rate, packet_len, spec, seed);
        let saturated = point.results.is_saturated();
        out.push(point);
        if saturated {
            past_saturation += 1;
            if past_saturation >= 2 {
                break;
            }
        }
    }
    out
}

/// [`latency_sweep`] over a worker pool of `threads` threads.
///
/// Returns exactly the same points as the sequential sweep, in the same
/// order: each point is an independent run (fresh network, same workload
/// seed), and the sequential "stop two points past saturation" rule is
/// re-applied over the completed points. A worker skips a point only when
/// two already-finished points at lower rates saturated — in which case
/// the sequential sweep would have stopped before it — so no point the
/// sequential sweep reports is ever missing.
pub fn latency_sweep_parallel(
    build: impl Fn() -> Network + Sync,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
    threads: usize,
) -> Vec<SweepPoint> {
    sweep_executor(
        |rate| {
            let mut net = build();
            run_point(&mut net, pattern, rate, packet_len, spec, seed)
        },
        rates,
        threads,
    )
    .0
}

/// The shared sweep machinery behind [`latency_sweep_parallel`] and
/// [`latency_sweep_warm_start`]: runs `run_at(rate)` for each rate on a
/// pool of `threads` workers, re-applies the sequential early-exit rule,
/// and also reports how many points actually executed (the warm-start
/// savings accounting needs the executed count, not the reported one —
/// workers may finish points the truncation later drops).
fn sweep_executor(
    run_at: impl Fn(f64) -> SweepPoint + Sync,
    rates: &[f64],
    threads: usize,
) -> (Vec<SweepPoint>, usize) {
    let threads = threads.clamp(1, rates.len().max(1));
    if threads <= 1 {
        let mut out = Vec::new();
        let mut past_saturation = 0;
        for &rate in rates {
            let point = run_at(rate);
            let saturated = point.results.is_saturated();
            out.push(point);
            if saturated {
                past_saturation += 1;
                if past_saturation >= 2 {
                    break;
                }
            }
        }
        let executed = out.len();
        return (out, executed);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepPoint>>> = rates.iter().map(|_| Mutex::new(None)).collect();
    let saturated_idx: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= rates.len() {
                    break;
                }
                // Early exit: with two known-saturated points below i, the
                // sequential sweep stops before reaching i.
                {
                    let sat = saturated_idx.lock().expect("sweep lock");
                    if sat.iter().filter(|&&s| s < i).count() >= 2 {
                        continue;
                    }
                }
                let point = run_at(rates[i]);
                let is_sat = point.results.is_saturated();
                *slots[i].lock().expect("sweep slot") = Some(point);
                if is_sat {
                    saturated_idx.lock().expect("sweep lock").push(i);
                }
            });
        }
    });
    let executed = slots
        .iter()
        .filter(|s| s.lock().expect("sweep slot").is_some())
        .count();
    // Post-pass: replay the sequential truncation over the computed
    // points so the output is indistinguishable from `latency_sweep`.
    let mut out = Vec::new();
    let mut past_saturation = 0;
    for slot in &slots {
        let Some(point) = slot.lock().expect("sweep slot").take() else {
            break; // skipped ⇒ the sequential sweep stopped earlier
        };
        let saturated = point.results.is_saturated();
        out.push(point);
        if saturated {
            past_saturation += 1;
            if past_saturation >= 2 {
                break;
            }
        }
    }
    (out, executed)
}

/// A warm-started sweep: the points plus how many warm-up cycles the
/// shared checkpoint avoided re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSweep {
    /// Sweep points, truncated by the sequential early-exit rule.
    pub points: Vec<SweepPoint>,
    /// Warm-up cycles skipped across all executed points thanks to the
    /// shared warm checkpoint. The first warm-up is paid once to build
    /// the checkpoint, so `n` executed points save `warmup × (n − 1)`
    /// cycles over a cold sweep.
    pub warmup_cycles_saved: Cycle,
}

/// Warm-start variant of [`latency_sweep_parallel`]: pays the warm-up
/// once — at the first (lightest) rate — checkpoints the warmed network
/// ([`Network::checkpoint`]) and starts every sweep point from the
/// restored state instead of re-simulating its own warm-up.
///
/// This is an *approximation mode*: each point resumes the warm state
/// reached under the first rate with a fresh workload at its own rate, so
/// results are close to — but not bit-identical with — a cold sweep
/// (whose every point warms up under its own rate). Use it for dense
/// sweeps where warm-up dominates the schedule;
/// [`latency_sweep_parallel`] keeps the exact cold semantics.
///
/// Falls back to a cold sweep (`warmup_cycles_saved == 0`) when there is
/// nothing to save (`warmup == 0`, fewer than two rates) or the warm-up
/// run itself ends early (deadlock or fault stall).
#[allow(clippy::too_many_arguments)]
pub fn latency_sweep_warm_start(
    build: impl Fn() -> Network + Sync,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
    threads: usize,
) -> WarmSweep {
    let cold = |build: &(dyn Fn() -> Network + Sync)| WarmSweep {
        points: latency_sweep_parallel(build, pattern, rates, packet_len, spec, seed, threads),
        warmup_cycles_saved: 0,
    };
    if spec.warmup == 0 || rates.len() < 2 {
        return cold(&build);
    }
    let blob = {
        let mut net = build();
        let nodes: Vec<NodeId> = (0..net.topology().geometry().nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, pattern, rates[0], packet_len, seed);
        if run_until(&mut net, &mut w, spec, spec.warmup).is_some() {
            // The warm-up aborted (deadlock or fault stall): every cold
            // point would abort the same way, so warm-starting is moot.
            return cold(&build);
        }
        net.checkpoint()
    };
    let (points, executed) = sweep_executor(
        |rate| {
            let mut net = build();
            net.restore(&blob)
                .expect("the warm checkpoint restores into an identically-built network");
            run_point(&mut net, pattern, rate, packet_len, spec, seed)
        },
        rates,
        threads,
    );
    WarmSweep {
        points,
        warmup_cycles_saved: spec.warmup * executed.saturating_sub(1) as Cycle,
    }
}

/// Convenience: sweeps one paper preset on `geom`.
pub fn preset_sweep(
    kind: NetworkKind,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
) -> Vec<SweepPoint> {
    preset_sweep_parallel(kind, geom, config, profile, pattern, rates, spec, 1)
}

/// [`preset_sweep`] over `threads` worker threads (1 = sequential).
#[allow(clippy::too_many_arguments)]
pub fn preset_sweep_parallel(
    kind: NetworkKind,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
    threads: usize,
) -> Vec<SweepPoint> {
    let packet_len = config.packet_len;
    let seed = config.seed;
    latency_sweep_parallel(
        || kind.build(geom, config, profile),
        pattern,
        rates,
        packet_len,
        spec,
        seed,
        threads,
    )
}

/// The saturation injection rate: the highest swept rate whose run stayed
/// unsaturated, or `None` if even the first point saturated.
pub fn saturation_rate(points: &[SweepPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| !p.results.is_saturated())
        .map(|p| p.rate)
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
}

/// The first and last point of a sweep, or `None` for an empty sweep.
///
/// Sweeps over an empty rate list legitimately produce no points (see
/// [`latency_sweep`]); consumers that only care about the curve's
/// endpoints use this instead of bare `first()/last().unwrap()` so the
/// empty case surfaces as a value, not a panic.
pub fn sweep_endpoints(points: &[SweepPoint]) -> Option<(&SweepPoint, &SweepPoint)> {
    Some((points.first()?, points.last()?))
}

/// The default injection-rate ladder of the CLI and the calibration
/// harness: geometric from 0.02 flits/cycle/node with ratio 1.5, capped
/// at 1.2 (a dozen points spanning well past every preset's saturation).
pub fn default_rate_ladder() -> Vec<f64> {
    let mut rates = Vec::new();
    let mut r = 0.02f64;
    while r <= 1.2 {
        rates.push(r);
        r *= 1.5;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RunSpec;

    #[test]
    fn mesh_sweep_shows_latency_growth_and_saturation() {
        let geom = Geometry::new(2, 2, 2, 2);
        let rates = [0.02, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0];
        let points = preset_sweep(
            NetworkKind::UniformParallelMesh,
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            &rates,
            RunSpec::smoke(),
        );
        assert!(points.len() >= 3);
        // Latency is (weakly) increasing from the first to the last point.
        let Some((first, last)) = sweep_endpoints(&points) else {
            panic!("a non-empty rate list always yields points");
        };
        let (first, last) = (first.results.avg_latency, last.results.avg_latency);
        assert!(last > first, "{first} !< {last}");
        // The sweep stops early once saturated (7 rates offered).
        let final_saturated = points.last().is_some_and(|p| p.results.is_saturated());
        assert!(points.len() < rates.len() || final_saturated);
        let sat = saturation_rate(&points);
        assert!(sat.is_some());
        assert!(sat.is_some_and(|s| s >= 0.02));
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let geom = Geometry::new(2, 2, 2, 2);
        let rates = [0.02, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0];
        let sweep = |threads| {
            preset_sweep_parallel(
                NetworkKind::UniformParallelMesh,
                geom,
                SimConfig::default(),
                SchedulingProfile::balanced(),
                TrafficPattern::Uniform,
                &rates,
                RunSpec::smoke(),
                threads,
            )
        };
        let sequential = sweep(1);
        for threads in [2, 4, 7] {
            assert_eq!(sweep(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn saturation_rate_of_empty_is_none() {
        assert_eq!(saturation_rate(&[]), None);
        assert!(sweep_endpoints(&[]).is_none());
    }

    #[test]
    fn empty_rate_list_is_a_clean_no_op() {
        let geom = Geometry::new(2, 2, 2, 2);
        let config = SimConfig::default();
        let points = preset_sweep(
            NetworkKind::UniformParallelMesh,
            geom,
            config,
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            &[],
            RunSpec::smoke(),
        );
        assert!(points.is_empty());
        assert_eq!(saturation_rate(&points), None);
        assert!(sweep_endpoints(&points).is_none());
        // The warm-start variant degrades to the same clean no-op.
        let warm = latency_sweep_warm_start(
            || NetworkKind::UniformParallelMesh.build(geom, config, SchedulingProfile::balanced()),
            TrafficPattern::Uniform,
            &[],
            config.packet_len,
            RunSpec::smoke(),
            config.seed,
            2,
        );
        assert!(warm.points.is_empty());
        assert_eq!(warm.warmup_cycles_saved, 0);
    }

    /// A hand-built sweep point: `saturated` drives the backlog-based
    /// branch of [`SimResults::is_saturated`], `latency` the curve shape.
    fn synthetic_point(rate: f64, latency: f64, saturated: bool) -> SweepPoint {
        use crate::network::Collector;
        let mut c = Collector::default();
        for _ in 0..100 {
            c.latency.push(latency);
            c.measured_packets += 1;
            c.measured_flits += 16;
        }
        let backlog = if saturated { 100 } else { 0 };
        SweepPoint {
            rate,
            results: SimResults::from_collector(&c, 16, 1_000, backlog),
            drained: !saturated,
        }
    }

    #[test]
    fn saturation_rate_when_list_ends_exactly_at_saturation() {
        // The last swept rate is the first saturated one: the reported
        // saturation rate is the last *unsaturated* rate, not the knee
        // itself.
        let points = vec![
            synthetic_point(0.1, 50.0, false),
            synthetic_point(0.2, 80.0, false),
            synthetic_point(0.3, 900.0, true),
        ];
        assert_eq!(saturation_rate(&points), Some(0.2));
    }

    #[test]
    fn saturation_rate_with_fewer_than_two_post_saturation_points() {
        // A sweep truncated with only one point past the knee (the run
        // stopped early, or the ladder ran out) still reports the knee.
        let one_past = vec![
            synthetic_point(0.1, 40.0, false),
            synthetic_point(0.2, 2_000.0, true),
        ];
        assert_eq!(saturation_rate(&one_past), Some(0.1));
        // Degenerate: the very first point saturates — no knee to report.
        let none_clean = vec![synthetic_point(0.1, 5_000.0, true)];
        assert_eq!(saturation_rate(&none_clean), None);
    }

    #[test]
    fn saturation_rate_with_non_monotonic_noise_near_knee() {
        // Measurement noise near the knee: an unsaturated point *after* a
        // saturated one (latency dipped below the heuristic). The reported
        // saturation rate is the highest unsaturated rate — the noisy
        // recovery — not the first knee crossing.
        let points = vec![
            synthetic_point(0.1, 60.0, false),
            synthetic_point(0.2, 9_500.0, true),
            synthetic_point(0.3, 8_000.0, false),
            synthetic_point(0.45, 12_000.0, true),
        ];
        assert_eq!(saturation_rate(&points), Some(0.3));
        // And the latency-threshold branch of is_saturated (no backlog,
        // exploded latency) participates in the same logic.
        let exploded = synthetic_point(0.5, 11_000.0, false);
        assert!(exploded.results.is_saturated(), "latency > 10k saturates");
    }

    #[test]
    fn default_rate_ladder_shape() {
        let rates = default_rate_ladder();
        assert_eq!(rates.first().copied(), Some(0.02));
        assert!(rates.iter().all(|&r| r <= 1.2));
        assert!(rates.windows(2).all(|w| (w[1] / w[0] - 1.5).abs() < 1e-12));
        // Spans past every preset's saturation (≥ 1.0 would be ideal, the
        // ladder tops out at 0.02·1.5⁹ ≈ 0.77 < 1.2 ≤ 0.02·1.5¹⁰).
        assert!(rates.last().is_some_and(|&r| r > 0.5));
    }

    #[test]
    fn warm_start_sweep_skips_warmup_and_reports_savings() {
        let geom = Geometry::new(2, 2, 2, 2);
        let config = SimConfig::default();
        let rates = [0.02, 0.08, 0.14];
        let spec = RunSpec::smoke();
        let warm = latency_sweep_warm_start(
            || NetworkKind::UniformParallelMesh.build(geom, config, SchedulingProfile::balanced()),
            TrafficPattern::Uniform,
            &rates,
            config.packet_len,
            spec,
            config.seed,
            2,
        );
        assert_eq!(warm.points.len(), rates.len());
        // Three executed points share one paid warm-up: two are saved.
        assert_eq!(warm.warmup_cycles_saved, spec.warmup * 2);
        for p in &warm.points {
            assert!(p.results.packets > 0, "rate {} produced no traffic", p.rate);
            assert!(p.drained, "light load must drain at rate {}", p.rate);
        }
        // The curve still behaves like a latency–injection curve.
        let Some((first, last)) = sweep_endpoints(&warm.points) else {
            panic!("warm sweep over three rates yields points");
        };
        assert!(last.results.avg_latency >= first.results.avg_latency * 0.9);
        // Warm-starting is deterministic: the same call reproduces the
        // same points bit-for-bit at any worker count.
        let again = latency_sweep_warm_start(
            || NetworkKind::UniformParallelMesh.build(geom, config, SchedulingProfile::balanced()),
            TrafficPattern::Uniform,
            &rates,
            config.packet_len,
            spec,
            config.seed,
            1,
        );
        assert_eq!(again.points, warm.points);
    }
}

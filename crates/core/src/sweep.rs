//! Injection-rate sweeps: the latency–throughput curves of Figs. 11/13/14.
//!
//! Sweeps come in two flavors with identical results:
//!
//! * [`latency_sweep`] runs the points one after another, stopping two
//!   points past saturation;
//! * [`latency_sweep_parallel`] distributes the points over a worker pool
//!   ([`std::thread::scope`], no external dependencies). Every point is
//!   an independent simulation on a fresh network with the same seed, so
//!   parallel execution is bit-identical to sequential — a post-pass
//!   re-applies the sequential early-exit rule, and workers skip points
//!   only when enough earlier points are already known saturated that the
//!   sequential sweep provably never reaches them.
//!
//! [`latency_sweep_warm_start`] additionally amortizes the warm-up: it
//! pays it once, checkpoints the warmed network and starts every point
//! from the restored state (an approximation — see its docs).

use crate::config::SimConfig;
use crate::network::Network;
use crate::presets::NetworkKind;
use crate::results::SimResults;
use crate::scheduler::SchedulingProfile;
use crate::sim::{run, run_until, RunSpec};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use simkit::Cycle;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One point of a latency–injection curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered injection rate, flits/cycle/node.
    pub rate: f64,
    /// Measured results at that rate.
    pub results: SimResults,
    /// Whether the run drained completely.
    pub drained: bool,
}

fn run_point(
    net: &mut Network,
    pattern: TrafficPattern,
    rate: f64,
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
) -> SweepPoint {
    let nodes: Vec<NodeId> = (0..net.topology().geometry().nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, pattern, rate, packet_len, seed);
    let outcome = run(net, &mut w, spec);
    SweepPoint {
        rate,
        results: outcome.results,
        drained: outcome.drained,
    }
}

/// Sweeps injection rates on fresh networks built by `build`, stopping two
/// points after saturation (the curves of Fig. 11 end just past the
/// saturation throughput).
pub fn latency_sweep(
    mut build: impl FnMut() -> Network,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    let mut past_saturation = 0;
    for &rate in rates {
        let mut net = build();
        let point = run_point(&mut net, pattern, rate, packet_len, spec, seed);
        let saturated = point.results.is_saturated();
        out.push(point);
        if saturated {
            past_saturation += 1;
            if past_saturation >= 2 {
                break;
            }
        }
    }
    out
}

/// [`latency_sweep`] over a worker pool of `threads` threads.
///
/// Returns exactly the same points as the sequential sweep, in the same
/// order: each point is an independent run (fresh network, same workload
/// seed), and the sequential "stop two points past saturation" rule is
/// re-applied over the completed points. A worker skips a point only when
/// two already-finished points at lower rates saturated — in which case
/// the sequential sweep would have stopped before it — so no point the
/// sequential sweep reports is ever missing.
pub fn latency_sweep_parallel(
    build: impl Fn() -> Network + Sync,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
    threads: usize,
) -> Vec<SweepPoint> {
    sweep_executor(
        |rate| {
            let mut net = build();
            run_point(&mut net, pattern, rate, packet_len, spec, seed)
        },
        rates,
        threads,
    )
    .0
}

/// The shared sweep machinery behind [`latency_sweep_parallel`] and
/// [`latency_sweep_warm_start`]: runs `run_at(rate)` for each rate on a
/// pool of `threads` workers, re-applies the sequential early-exit rule,
/// and also reports how many points actually executed (the warm-start
/// savings accounting needs the executed count, not the reported one —
/// workers may finish points the truncation later drops).
fn sweep_executor(
    run_at: impl Fn(f64) -> SweepPoint + Sync,
    rates: &[f64],
    threads: usize,
) -> (Vec<SweepPoint>, usize) {
    let threads = threads.clamp(1, rates.len().max(1));
    if threads <= 1 {
        let mut out = Vec::new();
        let mut past_saturation = 0;
        for &rate in rates {
            let point = run_at(rate);
            let saturated = point.results.is_saturated();
            out.push(point);
            if saturated {
                past_saturation += 1;
                if past_saturation >= 2 {
                    break;
                }
            }
        }
        let executed = out.len();
        return (out, executed);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepPoint>>> = rates.iter().map(|_| Mutex::new(None)).collect();
    let saturated_idx: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= rates.len() {
                    break;
                }
                // Early exit: with two known-saturated points below i, the
                // sequential sweep stops before reaching i.
                {
                    let sat = saturated_idx.lock().expect("sweep lock");
                    if sat.iter().filter(|&&s| s < i).count() >= 2 {
                        continue;
                    }
                }
                let point = run_at(rates[i]);
                let is_sat = point.results.is_saturated();
                *slots[i].lock().expect("sweep slot") = Some(point);
                if is_sat {
                    saturated_idx.lock().expect("sweep lock").push(i);
                }
            });
        }
    });
    let executed = slots
        .iter()
        .filter(|s| s.lock().expect("sweep slot").is_some())
        .count();
    // Post-pass: replay the sequential truncation over the computed
    // points so the output is indistinguishable from `latency_sweep`.
    let mut out = Vec::new();
    let mut past_saturation = 0;
    for slot in &slots {
        let Some(point) = slot.lock().expect("sweep slot").take() else {
            break; // skipped ⇒ the sequential sweep stopped earlier
        };
        let saturated = point.results.is_saturated();
        out.push(point);
        if saturated {
            past_saturation += 1;
            if past_saturation >= 2 {
                break;
            }
        }
    }
    (out, executed)
}

/// A warm-started sweep: the points plus how many warm-up cycles the
/// shared checkpoint avoided re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSweep {
    /// Sweep points, truncated by the sequential early-exit rule.
    pub points: Vec<SweepPoint>,
    /// Warm-up cycles skipped across all executed points thanks to the
    /// shared warm checkpoint. The first warm-up is paid once to build
    /// the checkpoint, so `n` executed points save `warmup × (n − 1)`
    /// cycles over a cold sweep.
    pub warmup_cycles_saved: Cycle,
}

/// Warm-start variant of [`latency_sweep_parallel`]: pays the warm-up
/// once — at the first (lightest) rate — checkpoints the warmed network
/// ([`Network::checkpoint`]) and starts every sweep point from the
/// restored state instead of re-simulating its own warm-up.
///
/// This is an *approximation mode*: each point resumes the warm state
/// reached under the first rate with a fresh workload at its own rate, so
/// results are close to — but not bit-identical with — a cold sweep
/// (whose every point warms up under its own rate). Use it for dense
/// sweeps where warm-up dominates the schedule;
/// [`latency_sweep_parallel`] keeps the exact cold semantics.
///
/// Falls back to a cold sweep (`warmup_cycles_saved == 0`) when there is
/// nothing to save (`warmup == 0`, fewer than two rates) or the warm-up
/// run itself ends early (deadlock or fault stall).
#[allow(clippy::too_many_arguments)]
pub fn latency_sweep_warm_start(
    build: impl Fn() -> Network + Sync,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
    threads: usize,
) -> WarmSweep {
    let cold = |build: &(dyn Fn() -> Network + Sync)| WarmSweep {
        points: latency_sweep_parallel(build, pattern, rates, packet_len, spec, seed, threads),
        warmup_cycles_saved: 0,
    };
    if spec.warmup == 0 || rates.len() < 2 {
        return cold(&build);
    }
    let blob = {
        let mut net = build();
        let nodes: Vec<NodeId> = (0..net.topology().geometry().nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, pattern, rates[0], packet_len, seed);
        if run_until(&mut net, &mut w, spec, spec.warmup).is_some() {
            // The warm-up aborted (deadlock or fault stall): every cold
            // point would abort the same way, so warm-starting is moot.
            return cold(&build);
        }
        net.checkpoint()
    };
    let (points, executed) = sweep_executor(
        |rate| {
            let mut net = build();
            net.restore(&blob)
                .expect("the warm checkpoint restores into an identically-built network");
            run_point(&mut net, pattern, rate, packet_len, spec, seed)
        },
        rates,
        threads,
    );
    WarmSweep {
        points,
        warmup_cycles_saved: spec.warmup * executed.saturating_sub(1) as Cycle,
    }
}

/// Convenience: sweeps one paper preset on `geom`.
pub fn preset_sweep(
    kind: NetworkKind,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
) -> Vec<SweepPoint> {
    preset_sweep_parallel(kind, geom, config, profile, pattern, rates, spec, 1)
}

/// [`preset_sweep`] over `threads` worker threads (1 = sequential).
#[allow(clippy::too_many_arguments)]
pub fn preset_sweep_parallel(
    kind: NetworkKind,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
    threads: usize,
) -> Vec<SweepPoint> {
    let packet_len = config.packet_len;
    let seed = config.seed;
    latency_sweep_parallel(
        || kind.build(geom, config, profile),
        pattern,
        rates,
        packet_len,
        spec,
        seed,
        threads,
    )
}

/// The saturation injection rate: the highest swept rate whose run stayed
/// unsaturated, or `None` if even the first point saturated.
pub fn saturation_rate(points: &[SweepPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| !p.results.is_saturated())
        .map(|p| p.rate)
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RunSpec;

    #[test]
    fn mesh_sweep_shows_latency_growth_and_saturation() {
        let geom = Geometry::new(2, 2, 2, 2);
        let rates = [0.02, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0];
        let points = preset_sweep(
            NetworkKind::UniformParallelMesh,
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            &rates,
            RunSpec::smoke(),
        );
        assert!(points.len() >= 3);
        // Latency is (weakly) increasing from the first to the last point.
        let first = points.first().unwrap().results.avg_latency;
        let last = points.last().unwrap().results.avg_latency;
        assert!(last > first, "{first} !< {last}");
        // The sweep stops early once saturated (7 rates offered).
        assert!(points.len() < rates.len() || points.last().unwrap().results.is_saturated());
        let sat = saturation_rate(&points);
        assert!(sat.is_some());
        assert!(sat.unwrap() >= 0.02);
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let geom = Geometry::new(2, 2, 2, 2);
        let rates = [0.02, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0];
        let sweep = |threads| {
            preset_sweep_parallel(
                NetworkKind::UniformParallelMesh,
                geom,
                SimConfig::default(),
                SchedulingProfile::balanced(),
                TrafficPattern::Uniform,
                &rates,
                RunSpec::smoke(),
                threads,
            )
        };
        let sequential = sweep(1);
        for threads in [2, 4, 7] {
            assert_eq!(sweep(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn saturation_rate_of_empty_is_none() {
        assert_eq!(saturation_rate(&[]), None);
    }

    #[test]
    fn warm_start_sweep_skips_warmup_and_reports_savings() {
        let geom = Geometry::new(2, 2, 2, 2);
        let config = SimConfig::default();
        let rates = [0.02, 0.08, 0.14];
        let spec = RunSpec::smoke();
        let warm = latency_sweep_warm_start(
            || NetworkKind::UniformParallelMesh.build(geom, config, SchedulingProfile::balanced()),
            TrafficPattern::Uniform,
            &rates,
            config.packet_len,
            spec,
            config.seed,
            2,
        );
        assert_eq!(warm.points.len(), rates.len());
        // Three executed points share one paid warm-up: two are saved.
        assert_eq!(warm.warmup_cycles_saved, spec.warmup * 2);
        for p in &warm.points {
            assert!(p.results.packets > 0, "rate {} produced no traffic", p.rate);
            assert!(p.drained, "light load must drain at rate {}", p.rate);
        }
        // The curve still behaves like a latency–injection curve.
        assert!(
            warm.points.last().unwrap().results.avg_latency
                >= warm.points.first().unwrap().results.avg_latency * 0.9
        );
        // Warm-starting is deterministic: the same call reproduces the
        // same points bit-for-bit at any worker count.
        let again = latency_sweep_warm_start(
            || NetworkKind::UniformParallelMesh.build(geom, config, SchedulingProfile::balanced()),
            TrafficPattern::Uniform,
            &rates,
            config.packet_len,
            spec,
            config.seed,
            1,
        );
        assert_eq!(again.points, warm.points);
    }
}

//! Injection-rate sweeps: the latency–throughput curves of Figs. 11/13/14.
//!
//! Sweeps come in two flavors with identical results:
//!
//! * [`latency_sweep`] runs the points one after another, stopping two
//!   points past saturation;
//! * [`latency_sweep_parallel`] distributes the points over a worker pool
//!   ([`std::thread::scope`], no external dependencies). Every point is
//!   an independent simulation on a fresh network with the same seed, so
//!   parallel execution is bit-identical to sequential — a post-pass
//!   re-applies the sequential early-exit rule, and workers skip points
//!   only when enough earlier points are already known saturated that the
//!   sequential sweep provably never reaches them.

use crate::config::SimConfig;
use crate::network::Network;
use crate::presets::NetworkKind;
use crate::results::SimResults;
use crate::scheduler::SchedulingProfile;
use crate::sim::{run, RunSpec};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One point of a latency–injection curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered injection rate, flits/cycle/node.
    pub rate: f64,
    /// Measured results at that rate.
    pub results: SimResults,
    /// Whether the run drained completely.
    pub drained: bool,
}

fn run_point(
    net: &mut Network,
    pattern: TrafficPattern,
    rate: f64,
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
) -> SweepPoint {
    let nodes: Vec<NodeId> = (0..net.topology().geometry().nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, pattern, rate, packet_len, seed);
    let outcome = run(net, &mut w, spec);
    SweepPoint {
        rate,
        results: outcome.results,
        drained: outcome.drained,
    }
}

/// Sweeps injection rates on fresh networks built by `build`, stopping two
/// points after saturation (the curves of Fig. 11 end just past the
/// saturation throughput).
pub fn latency_sweep(
    mut build: impl FnMut() -> Network,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    let mut past_saturation = 0;
    for &rate in rates {
        let mut net = build();
        let point = run_point(&mut net, pattern, rate, packet_len, spec, seed);
        let saturated = point.results.is_saturated();
        out.push(point);
        if saturated {
            past_saturation += 1;
            if past_saturation >= 2 {
                break;
            }
        }
    }
    out
}

/// [`latency_sweep`] over a worker pool of `threads` threads.
///
/// Returns exactly the same points as the sequential sweep, in the same
/// order: each point is an independent run (fresh network, same workload
/// seed), and the sequential "stop two points past saturation" rule is
/// re-applied over the completed points. A worker skips a point only when
/// two already-finished points at lower rates saturated — in which case
/// the sequential sweep would have stopped before it — so no point the
/// sequential sweep reports is ever missing.
pub fn latency_sweep_parallel(
    build: impl Fn() -> Network + Sync,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
    threads: usize,
) -> Vec<SweepPoint> {
    let threads = threads.clamp(1, rates.len().max(1));
    if threads <= 1 {
        return latency_sweep(build, pattern, rates, packet_len, spec, seed);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepPoint>>> = rates.iter().map(|_| Mutex::new(None)).collect();
    let saturated_idx: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= rates.len() {
                    break;
                }
                // Early exit: with two known-saturated points below i, the
                // sequential sweep stops before reaching i.
                {
                    let sat = saturated_idx.lock().expect("sweep lock");
                    if sat.iter().filter(|&&s| s < i).count() >= 2 {
                        continue;
                    }
                }
                let mut net = build();
                let point = run_point(&mut net, pattern, rates[i], packet_len, spec, seed);
                let is_sat = point.results.is_saturated();
                *slots[i].lock().expect("sweep slot") = Some(point);
                if is_sat {
                    saturated_idx.lock().expect("sweep lock").push(i);
                }
            });
        }
    });
    // Post-pass: replay the sequential truncation over the computed
    // points so the output is indistinguishable from `latency_sweep`.
    let mut out = Vec::new();
    let mut past_saturation = 0;
    for slot in &slots {
        let Some(point) = slot.lock().expect("sweep slot").take() else {
            break; // skipped ⇒ the sequential sweep stopped earlier
        };
        let saturated = point.results.is_saturated();
        out.push(point);
        if saturated {
            past_saturation += 1;
            if past_saturation >= 2 {
                break;
            }
        }
    }
    out
}

/// Convenience: sweeps one paper preset on `geom`.
pub fn preset_sweep(
    kind: NetworkKind,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
) -> Vec<SweepPoint> {
    preset_sweep_parallel(kind, geom, config, profile, pattern, rates, spec, 1)
}

/// [`preset_sweep`] over `threads` worker threads (1 = sequential).
#[allow(clippy::too_many_arguments)]
pub fn preset_sweep_parallel(
    kind: NetworkKind,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
    threads: usize,
) -> Vec<SweepPoint> {
    let packet_len = config.packet_len;
    let seed = config.seed;
    latency_sweep_parallel(
        || kind.build(geom, config, profile),
        pattern,
        rates,
        packet_len,
        spec,
        seed,
        threads,
    )
}

/// The saturation injection rate: the highest swept rate whose run stayed
/// unsaturated, or `None` if even the first point saturated.
pub fn saturation_rate(points: &[SweepPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| !p.results.is_saturated())
        .map(|p| p.rate)
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RunSpec;

    #[test]
    fn mesh_sweep_shows_latency_growth_and_saturation() {
        let geom = Geometry::new(2, 2, 2, 2);
        let rates = [0.02, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0];
        let points = preset_sweep(
            NetworkKind::UniformParallelMesh,
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            &rates,
            RunSpec::smoke(),
        );
        assert!(points.len() >= 3);
        // Latency is (weakly) increasing from the first to the last point.
        let first = points.first().unwrap().results.avg_latency;
        let last = points.last().unwrap().results.avg_latency;
        assert!(last > first, "{first} !< {last}");
        // The sweep stops early once saturated (7 rates offered).
        assert!(points.len() < rates.len() || points.last().unwrap().results.is_saturated());
        let sat = saturation_rate(&points);
        assert!(sat.is_some());
        assert!(sat.unwrap() >= 0.02);
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let geom = Geometry::new(2, 2, 2, 2);
        let rates = [0.02, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0];
        let sweep = |threads| {
            preset_sweep_parallel(
                NetworkKind::UniformParallelMesh,
                geom,
                SimConfig::default(),
                SchedulingProfile::balanced(),
                TrafficPattern::Uniform,
                &rates,
                RunSpec::smoke(),
                threads,
            )
        };
        let sequential = sweep(1);
        for threads in [2, 4, 7] {
            assert_eq!(sweep(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn saturation_rate_of_empty_is_none() {
        assert_eq!(saturation_rate(&[]), None);
    }
}

//! Injection-rate sweeps: the latency–throughput curves of Figs. 11/13/14.

use crate::config::SimConfig;
use crate::network::Network;
use crate::presets::NetworkKind;
use crate::results::SimResults;
use crate::scheduler::SchedulingProfile;
use crate::sim::{run, RunSpec};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};

/// One point of a latency–injection curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered injection rate, flits/cycle/node.
    pub rate: f64,
    /// Measured results at that rate.
    pub results: SimResults,
    /// Whether the run drained completely.
    pub drained: bool,
}

/// Sweeps injection rates on fresh networks built by `build`, stopping two
/// points after saturation (the curves of Fig. 11 end just past the
/// saturation throughput).
pub fn latency_sweep(
    mut build: impl FnMut() -> Network,
    pattern: TrafficPattern,
    rates: &[f64],
    packet_len: u16,
    spec: RunSpec,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    let mut past_saturation = 0;
    for &rate in rates {
        let mut net = build();
        let nodes: Vec<NodeId> = (0..net.topology().geometry().nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, pattern, rate, packet_len, seed);
        let outcome = run(&mut net, &mut w, spec);
        let saturated = outcome.results.is_saturated();
        out.push(SweepPoint {
            rate,
            results: outcome.results,
            drained: outcome.drained,
        });
        if saturated {
            past_saturation += 1;
            if past_saturation >= 2 {
                break;
            }
        }
    }
    out
}

/// Convenience: sweeps one paper preset on `geom`.
pub fn preset_sweep(
    kind: NetworkKind,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
) -> Vec<SweepPoint> {
    let packet_len = config.packet_len;
    let seed = config.seed;
    latency_sweep(
        || kind.build(geom, config, profile),
        pattern,
        rates,
        packet_len,
        spec,
        seed,
    )
}

/// The saturation injection rate: the highest swept rate whose run stayed
/// unsaturated, or `None` if even the first point saturated.
pub fn saturation_rate(points: &[SweepPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| !p.results.is_saturated())
        .map(|p| p.rate)
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RunSpec;

    #[test]
    fn mesh_sweep_shows_latency_growth_and_saturation() {
        let geom = Geometry::new(2, 2, 2, 2);
        let rates = [0.02, 0.1, 0.3, 0.6, 1.0, 1.5, 2.0];
        let points = preset_sweep(
            NetworkKind::UniformParallelMesh,
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            &rates,
            RunSpec::smoke(),
        );
        assert!(points.len() >= 3);
        // Latency is (weakly) increasing from the first to the last point.
        let first = points.first().unwrap().results.avg_latency;
        let last = points.last().unwrap().results.avg_latency;
        assert!(last > first, "{first} !< {last}");
        // The sweep stops early once saturated (7 rates offered).
        assert!(points.len() < rates.len() || points.last().unwrap().results.is_saturated());
        let sat = saturation_rate(&points);
        assert!(sat.is_some());
        assert!(sat.unwrap() >= 0.02);
    }

    #[test]
    fn saturation_rate_of_empty_is_none() {
        assert_eq!(saturation_rate(&[]), None);
    }
}

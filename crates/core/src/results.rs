//! Aggregated simulation results.

use crate::network::Collector;
use simkit::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::Cycle;

/// The outcome of one simulation run, aggregated over the measurement
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResults {
    /// Node count of the simulated system.
    pub nodes: u32,
    /// Measured cycles.
    pub cycles: Cycle,
    /// Measured packets delivered.
    pub packets: u64,
    /// Average packet latency, creation → delivery (cycles).
    pub avg_latency: f64,
    /// Latency standard deviation (Fig. 12 reports variance).
    pub latency_std: f64,
    /// Worst measured latency.
    pub max_latency: f64,
    /// Median latency (upper bucket edge, 4-cycle resolution).
    pub p50_latency: f64,
    /// 99th-percentile latency (upper bucket edge; +inf if in overflow).
    pub p99_latency: f64,
    /// Average network latency, injection → delivery (cycles).
    pub avg_net_latency: f64,
    /// Average latency of high-priority packets (0 when none were sent).
    pub avg_high_latency: f64,
    /// Worst latency among high-priority packets (0 when none were sent).
    pub max_high_latency: f64,
    /// Average head-flit hop count.
    pub avg_hops: f64,
    /// Accepted throughput in flits/cycle/node.
    pub throughput: f64,
    /// Average per-packet energy, pJ.
    pub avg_energy_pj: f64,
    /// Average per-packet on-chip energy, pJ.
    pub avg_onchip_pj: f64,
    /// Average per-packet parallel-interface energy, pJ.
    pub avg_parallel_pj: f64,
    /// Average per-packet serial-interface energy, pJ.
    pub avg_serial_pj: f64,
    /// Fraction of measured packets that hit the livelock baseline lock.
    pub locked_fraction: f64,
    /// Packets still alive (queued or in flight) at the end of the
    /// measurement window — a large backlog relative to `packets`
    /// indicates saturation.
    pub backlog: u64,
    /// Flits the link layer detected as corrupted over the whole run
    /// (zero unless fault injection is active).
    pub corrupted_flits: u64,
    /// Flits retransmitted by the retry layer or hetero-PHY adapters over
    /// the whole run.
    pub retransmitted_flits: u64,
    /// Hetero-PHY links that kept serving through a PHY hard failure.
    pub failovers: u64,
}

impl SimResults {
    /// Builds results from a network collector.
    pub fn from_collector(c: &Collector, nodes: u32, cycles: Cycle, backlog: u64) -> Self {
        let pkts = c.measured_packets.max(1) as f64;
        Self {
            nodes,
            cycles,
            packets: c.measured_packets,
            avg_latency: c.latency.mean(),
            latency_std: c.latency.std_dev(),
            max_latency: if c.latency.count() > 0 {
                c.latency.max()
            } else {
                0.0
            },
            p50_latency: c.latency_hist.as_ref().map_or(0.0, |h| h.percentile(50.0)),
            p99_latency: c.latency_hist.as_ref().map_or(0.0, |h| h.percentile(99.0)),
            avg_net_latency: c.net_latency.mean(),
            avg_high_latency: c.latency_high.mean(),
            max_high_latency: if c.latency_high.count() > 0 {
                c.latency_high.max()
            } else {
                0.0
            },
            avg_hops: c.hops.mean(),
            throughput: c.measured_flits as f64 / (cycles.max(1) as f64 * nodes as f64),
            avg_energy_pj: c.energy.mean(),
            avg_onchip_pj: c.onchip_pj / pkts,
            avg_parallel_pj: c.parallel_pj / pkts,
            avg_serial_pj: c.serial_pj / pkts,
            locked_fraction: c.locked_packets as f64 / pkts,
            backlog,
            corrupted_flits: c.corrupted_flits,
            retransmitted_flits: c.retransmitted_flits,
            failovers: c.failovers,
        }
    }

    /// Saturation heuristic: the network failed to accept the offered
    /// load — fewer than 85 % of the packets offered in the measurement
    /// window were delivered by its end — or latencies exploded.
    pub fn is_saturated(&self) -> bool {
        let offered = self.packets + self.backlog;
        (offered > 0 && (self.packets as f64) < 0.85 * offered as f64)
            || self.avg_latency > 10_000.0
    }

    /// Average interface (parallel + serial) energy per packet, pJ.
    pub fn avg_interface_pj(&self) -> f64 {
        self.avg_parallel_pj + self.avg_serial_pj
    }

    /// CSV header matching [`SimResults::csv_row`].
    pub fn csv_header() -> &'static str {
        "nodes,cycles,packets,avg_latency,latency_std,avg_net_latency,avg_hops,\
         throughput,avg_energy_pj,onchip_pj,parallel_pj,serial_pj,locked_frac,backlog"
    }

    /// One CSV row of the results.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.2},{:.2},{:.2},{:.2},{:.5},{:.1},{:.1},{:.1},{:.1},{:.4},{}",
            self.nodes,
            self.cycles,
            self.packets,
            self.avg_latency,
            self.latency_std,
            self.avg_net_latency,
            self.avg_hops,
            self.throughput,
            self.avg_energy_pj,
            self.avg_onchip_pj,
            self.avg_parallel_pj,
            self.avg_serial_pj,
            self.locked_fraction,
            self.backlog,
        )
    }
}

/// Results persist bit-exactly through the deterministic codec: every
/// `f64` travels as its raw bits, so a cached result deserializes to the
/// same bits the engine produced (the result-cache contract; the golden
/// cache test pins this across all 30 fixtures).
impl SaveState for SimResults {
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.nodes);
        w.put_u64(self.cycles);
        w.put_u64(self.packets);
        w.put_f64(self.avg_latency);
        w.put_f64(self.latency_std);
        w.put_f64(self.max_latency);
        w.put_f64(self.p50_latency);
        w.put_f64(self.p99_latency);
        w.put_f64(self.avg_net_latency);
        w.put_f64(self.avg_high_latency);
        w.put_f64(self.max_high_latency);
        w.put_f64(self.avg_hops);
        w.put_f64(self.throughput);
        w.put_f64(self.avg_energy_pj);
        w.put_f64(self.avg_onchip_pj);
        w.put_f64(self.avg_parallel_pj);
        w.put_f64(self.avg_serial_pj);
        w.put_f64(self.locked_fraction);
        w.put_u64(self.backlog);
        w.put_u64(self.corrupted_flits);
        w.put_u64(self.retransmitted_flits);
        w.put_u64(self.failovers);
    }
}

impl LoadState for SimResults {
    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.nodes = r.get_u32()?;
        self.cycles = r.get_u64()?;
        self.packets = r.get_u64()?;
        self.avg_latency = r.get_f64()?;
        self.latency_std = r.get_f64()?;
        self.max_latency = r.get_f64()?;
        self.p50_latency = r.get_f64()?;
        self.p99_latency = r.get_f64()?;
        self.avg_net_latency = r.get_f64()?;
        self.avg_high_latency = r.get_f64()?;
        self.max_high_latency = r.get_f64()?;
        self.avg_hops = r.get_f64()?;
        self.throughput = r.get_f64()?;
        self.avg_energy_pj = r.get_f64()?;
        self.avg_onchip_pj = r.get_f64()?;
        self.avg_parallel_pj = r.get_f64()?;
        self.avg_serial_pj = r.get_f64()?;
        self.locked_fraction = r.get_f64()?;
        self.backlog = r.get_u64()?;
        self.corrupted_flits = r.get_u64()?;
        self.retransmitted_flits = r.get_u64()?;
        self.failovers = r.get_u64()?;
        Ok(())
    }
}

impl SimResults {
    /// An all-zero placeholder for [`LoadState`] deserialization.
    pub fn zeroed() -> Self {
        Self {
            nodes: 0,
            cycles: 0,
            packets: 0,
            avg_latency: 0.0,
            latency_std: 0.0,
            max_latency: 0.0,
            p50_latency: 0.0,
            p99_latency: 0.0,
            avg_net_latency: 0.0,
            avg_high_latency: 0.0,
            max_high_latency: 0.0,
            avg_hops: 0.0,
            throughput: 0.0,
            avg_energy_pj: 0.0,
            avg_onchip_pj: 0.0,
            avg_parallel_pj: 0.0,
            avg_serial_pj: 0.0,
            locked_fraction: 0.0,
            backlog: 0,
            corrupted_flits: 0,
            retransmitted_flits: 0,
            failovers: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector_with(packets: u64) -> Collector {
        let mut c = Collector::default();
        for i in 0..packets {
            c.latency.push(100.0 + i as f64);
            c.net_latency.push(90.0);
            c.hops.push(5.0);
            c.energy.push(500.0);
            c.measured_packets += 1;
            c.measured_flits += 16;
            c.onchip_pj += 100.0;
            c.parallel_pj += 300.0;
            c.serial_pj += 100.0;
        }
        c
    }

    #[test]
    fn aggregation_math() {
        let c = collector_with(10);
        let r = SimResults::from_collector(&c, 64, 1000, 0);
        assert_eq!(r.packets, 10);
        assert!((r.avg_latency - 104.5).abs() < 1e-9);
        assert!((r.throughput - 160.0 / (1000.0 * 64.0)).abs() < 1e-12);
        assert!((r.avg_onchip_pj - 100.0).abs() < 1e-9);
        assert!((r.avg_interface_pj() - 400.0).abs() < 1e-9);
        assert!(!r.is_saturated());
    }

    #[test]
    fn saturation_flags() {
        let c = collector_with(10);
        let r = SimResults::from_collector(&c, 64, 1000, 1_000);
        assert!(r.is_saturated());
        // Keeping up with the offered load is not saturation.
        let ok = SimResults::from_collector(&c, 64, 1000, 1);
        assert!(!ok.is_saturated());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let c = collector_with(3);
        let r = SimResults::from_collector(&c, 16, 100, 2);
        let row = r.csv_row();
        assert_eq!(
            row.split(',').count(),
            SimResults::csv_header().split(',').count()
        );
    }

    #[test]
    fn empty_collector_is_safe() {
        let c = Collector::default();
        let r = SimResults::from_collector(&c, 16, 100, 0);
        assert_eq!(r.packets, 0);
        assert_eq!(r.avg_latency, 0.0);
        assert_eq!(r.max_latency, 0.0);
    }
}

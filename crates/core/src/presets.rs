//! The paper's evaluated network presets and system scales.

use crate::config::SimConfig;
use crate::network::Network;
use crate::scheduler::SchedulingProfile;
use chiplet_topo::routing::HypercubeRouting;
use chiplet_topo::routing::{Algorithm1, NegativeFirstMesh, Routing, TorusAdaptive};
use chiplet_topo::{build, Geometry};

/// The networks compared in the evaluation (§8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Uniform-parallel-IF 2D-mesh (baseline for everything).
    UniformParallelMesh,
    /// Uniform-serial-IF 2D-torus (hetero-PHY baseline).
    UniformSerialTorus,
    /// Hetero-PHY 2D-torus, full interface bandwidth.
    HeteroPhyFull,
    /// Hetero-PHY 2D-torus, halved (pin-constrained) bandwidth.
    HeteroPhyHalf,
    /// Uniform-serial-IF chiplet hypercube (hetero-channel baseline).
    UniformSerialHypercube,
    /// Hetero-channel mesh + hypercube, full bandwidth.
    HeteroChannelFull,
    /// Hetero-channel mesh + hypercube, halved bandwidth.
    HeteroChannelHalf,
}

impl NetworkKind {
    /// The four networks of the hetero-PHY comparison (Figs. 11–13).
    pub const HETERO_PHY_SET: [NetworkKind; 4] = [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroPhyHalf,
    ];

    /// The four networks of the hetero-channel comparison (Figs. 14–15).
    pub const HETERO_CHANNEL_SET: [NetworkKind; 4] = [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialHypercube,
        NetworkKind::HeteroChannelFull,
        NetworkKind::HeteroChannelHalf,
    ];

    /// Whether this preset uses heterogeneous interfaces.
    pub fn is_hetero(self) -> bool {
        matches!(
            self,
            NetworkKind::HeteroPhyFull
                | NetworkKind::HeteroPhyHalf
                | NetworkKind::HeteroChannelFull
                | NetworkKind::HeteroChannelHalf
        )
    }

    /// Short label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::UniformParallelMesh => "uni-parallel-mesh",
            NetworkKind::UniformSerialTorus => "uni-serial-torus",
            NetworkKind::HeteroPhyFull => "hetero-phy-full",
            NetworkKind::HeteroPhyHalf => "hetero-phy-half",
            NetworkKind::UniformSerialHypercube => "uni-serial-hypercube",
            NetworkKind::HeteroChannelFull => "hetero-channel-full",
            NetworkKind::HeteroChannelHalf => "hetero-channel-half",
        }
    }

    /// The inverse of [`NetworkKind::label`]: parses a preset from its
    /// table label (the vocabulary the serve API and CLI requests use).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "uni-parallel-mesh" => Some(NetworkKind::UniformParallelMesh),
            "uni-serial-torus" => Some(NetworkKind::UniformSerialTorus),
            "hetero-phy-full" => Some(NetworkKind::HeteroPhyFull),
            "hetero-phy-half" => Some(NetworkKind::HeteroPhyHalf),
            "uni-serial-hypercube" => Some(NetworkKind::UniformSerialHypercube),
            "hetero-channel-full" => Some(NetworkKind::HeteroChannelFull),
            "hetero-channel-half" => Some(NetworkKind::HeteroChannelHalf),
            _ => None,
        }
    }

    /// The configuration this preset actually simulates with: the profile's
    /// PHY policy applied, and the bandwidth mode forced to the preset's
    /// width (uniform baselines always run full-width interfaces; the
    /// `*Half` presets force pin-constrained halved mode). Exposed so
    /// model-based estimators key off exactly the config the engine uses.
    pub fn effective_config(self, config: SimConfig, profile: SchedulingProfile) -> SimConfig {
        let mut config = config.with_policy(profile.phy_policy);
        if !self.is_hetero() {
            // Uniform baselines always run full-width interfaces.
            config.bandwidth_mode = crate::config::BandwidthMode::Full;
        }
        match self {
            NetworkKind::HeteroPhyHalf | NetworkKind::HeteroChannelHalf => {
                config.bandwidth_mode = crate::config::BandwidthMode::Halved;
            }
            NetworkKind::HeteroPhyFull | NetworkKind::HeteroChannelFull => {
                config.bandwidth_mode = crate::config::BandwidthMode::Full;
            }
            _ => {}
        }
        config
    }

    /// The link graph this preset simulates on `geom` (without the engine
    /// around it — topology-only consumers such as the estimation
    /// subsystem use this to avoid paying for network assembly).
    ///
    /// # Panics
    ///
    /// Panics for hypercube presets when the chiplet count is not a power
    /// of two.
    pub fn topology(self, geom: Geometry) -> chiplet_topo::SystemTopology {
        match self {
            NetworkKind::UniformParallelMesh => build::parallel_mesh(geom),
            NetworkKind::UniformSerialTorus => build::serial_torus(geom),
            NetworkKind::HeteroPhyFull | NetworkKind::HeteroPhyHalf => {
                build::hetero_phy_torus(geom)
            }
            NetworkKind::UniformSerialHypercube => build::serial_hypercube(geom),
            NetworkKind::HeteroChannelFull | NetworkKind::HeteroChannelHalf => {
                build::hetero_channel(geom)
            }
        }
    }

    /// Builds the network for this preset on `geom` with `config` and the
    /// given scheduling profile.
    ///
    /// # Panics
    ///
    /// Panics for hypercube presets when the chiplet count is not a power
    /// of two.
    pub fn build(self, geom: Geometry, config: SimConfig, profile: SchedulingProfile) -> Network {
        let config = self.effective_config(config, profile);
        let vcs = config.vcs;
        let routing: Box<dyn Routing> = match self {
            NetworkKind::UniformParallelMesh => Box::new(NegativeFirstMesh::new(vcs)),
            NetworkKind::UniformSerialTorus => Box::new(TorusAdaptive::new(vcs)),
            NetworkKind::HeteroPhyFull | NetworkKind::HeteroPhyHalf => {
                Box::new(TorusAdaptive::new(vcs))
            }
            NetworkKind::UniformSerialHypercube => Box::new(HypercubeRouting::new(vcs)),
            NetworkKind::HeteroChannelFull | NetworkKind::HeteroChannelHalf => Box::new(
                Algorithm1::with_serial_weight(vcs, profile.serial_selection_weight),
            ),
        };
        Network::new(self.topology(geom), routing, config)
    }
}

impl std::fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One of the paper's evaluated system scales (Table 3 notation:
/// `chiplets × (chip_w × chip_h)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Table 3 label.
    pub label: &'static str,
    /// The geometry.
    pub geometry: Geometry,
}

/// Every scale of Table 3.
pub fn paper_scales() -> Vec<Scale> {
    vec![
        Scale {
            label: "4x(2x2)",
            geometry: Geometry::new(2, 2, 2, 2),
        },
        Scale {
            label: "16x(2x2)",
            geometry: Geometry::new(4, 4, 2, 2),
        },
        Scale {
            label: "16x(4x4)",
            geometry: Geometry::new(4, 4, 4, 4),
        },
        Scale {
            label: "16x(6x6)",
            geometry: Geometry::new(4, 4, 6, 6),
        },
        Scale {
            label: "64x(7x7)",
            geometry: Geometry::new(8, 8, 7, 7),
        },
    ]
}

/// The medium pattern-evaluation system of §8.1.1: 4×4 chiplets of 4×4
/// nodes (256 nodes).
pub fn medium_system() -> Geometry {
    Geometry::new(4, 4, 4, 4)
}

/// The PARSEC system of §8.1.1: 4×4 chiplets of 2×2 nodes (64 nodes).
pub fn parsec_system() -> Geometry {
    Geometry::new(4, 4, 2, 2)
}

/// The HPC hetero-PHY system of §8.1.1: 6×6 chiplets of 6×6 nodes (1296).
pub fn hpc_system() -> Geometry {
    Geometry::new(6, 6, 6, 6)
}

/// The wafer-scale hetero-channel system of §8.1.2: 8×8 chiplets of 7×7
/// nodes (3136).
pub fn wafer_system() -> Geometry {
    Geometry::new(8, 8, 7, 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_match_table3() {
        let s = paper_scales();
        assert_eq!(s.len(), 5);
        let nodes: Vec<u32> = s.iter().map(|x| x.geometry.nodes()).collect();
        assert_eq!(nodes, vec![16, 64, 256, 576, 3136]);
    }

    #[test]
    fn builds_every_preset_small() {
        let geom = Geometry::new(2, 2, 2, 2);
        for kind in [
            NetworkKind::UniformParallelMesh,
            NetworkKind::UniformSerialTorus,
            NetworkKind::HeteroPhyFull,
            NetworkKind::HeteroPhyHalf,
            NetworkKind::UniformSerialHypercube,
            NetworkKind::HeteroChannelFull,
            NetworkKind::HeteroChannelHalf,
        ] {
            let net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
            assert_eq!(net.topology().geometry().nodes(), 16, "{kind}");
        }
    }

    #[test]
    fn half_presets_halve_interfaces() {
        let geom = Geometry::new(2, 2, 2, 2);
        let net = NetworkKind::HeteroPhyHalf.build(
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
        );
        assert_eq!(net.config().phy_params().total_bw(), 3);
        let full = NetworkKind::HeteroPhyFull.build(
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
        );
        assert_eq!(full.config().phy_params().total_bw(), 6);
    }

    #[test]
    fn paper_system_sizes() {
        assert_eq!(medium_system().nodes(), 256);
        assert_eq!(parsec_system().nodes(), 64);
        assert_eq!(hpc_system().nodes(), 1296);
        assert_eq!(wafer_system().nodes(), 3136);
    }
}

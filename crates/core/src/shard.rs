//! One shard of the partitioned network: state, phases, router window.
//!
//! The network is partitioned into chiplet-group **shards**. Every shard
//! owns the routers of its nodes and the media + credit lines of the
//! links *leaving* those nodes (link owner = shard of `link.src`), plus
//! private copies of everything a cycle touches: a [`FlitArena`], a
//! route table, active sets, per-link fault streams and NICs. A cycle
//! runs in two phases per shard:
//!
//! * [`Shard::phase1`] — replay inbound cross-shard credits, then the
//!   credit and media stages. Flits arriving over an owned link whose
//!   destination router lives in another shard are *not* delivered
//!   locally: their stat counters are charged here (the owner is the
//!   serial engine's accounting site) and the flit value is posted to
//!   the destination shard's mailbox.
//! * [`Shard::phase2`] — drain inbound cross-shard flits into the local
//!   routers (exactly where the serial engine's media stage would have
//!   put them, before any router steps), then the inject and route
//!   stages. Credits for flits forwarded out of non-owned in-links are
//!   posted to the owning shard's mailbox, to be replayed next cycle.
//!
//! A barrier between the phases guarantees each mailbox slot is written
//! in one phase and read in the other. Determinism rests on three rules:
//! RNG streams are forked per *global* link id at build time (every
//! shard derives the identical stream set; only the owner ever draws),
//! mailboxes drain in ascending producer-shard order, and all
//! order-sensitive observations (deliveries, link events) are buffered
//! here and merged by the orchestrator in a scheduling-independent
//! order.

use crate::energy::EnergyModel;
use crate::engine::EngineCtx;
use chiplet_noc::router::PipelineStage;
use chiplet_noc::{
    CreditLine, DelayLine, Flit, FlitArena, FlitRef, PacketId, PacketInfo, PacketStore,
    PortCandidate, RetryLine, Router, RouterEnv, ShardMailbox,
};
use chiplet_phy::{HeteroPhyLink, PhyKind};
use chiplet_topo::routing::{RouteTable, Routing};
use chiplet_topo::{LinkClass, LinkId, NodeId, SystemTopology};
use simkit::codec::{ByteReader, ByteWriter, CodecError};
use simkit::metrics::{MetricId, MetricsSlice};
use simkit::probe::{DeliveryEvent, LinkEvent};
use simkit::trace::{link_event_code, link_key, node_key, TraceKind, Tracer, NO_PID};
use simkit::{ActiveSet, Cycle, SimRng};
use std::collections::VecDeque;
use std::sync::atomic::Ordering::Relaxed;

/// One directed link's physical medium.
#[derive(Debug)]
pub(crate) enum Medium {
    /// A plain fixed-latency pipeline (on-chip, parallel or serial link).
    Plain {
        /// The flit pipeline (carrying arena handles).
        line: DelayLine<FlitRef>,
        /// The link class (for per-class energy accounting).
        class: LinkClass,
    },
    /// A plain pipeline wrapped in the CRC/replay retry link layer (built
    /// for interface links when the fault model is armed; error-free it is
    /// cycle-for-cycle identical to [`Medium::Plain`]).
    Guarded {
        /// The retrying flit pipeline.
        line: RetryLine,
        /// The link class (for per-class energy accounting).
        class: LinkClass,
    },
    /// A hetero-PHY adapter (parallel + serial PHYs with scheduling).
    Hetero(Box<HeteroPhyLink>),
}

impl Medium {
    fn in_flight(&self) -> usize {
        match self {
            Medium::Plain { line, .. } => line.in_flight(),
            Medium::Guarded { line, .. } => line.in_flight(),
            Medium::Hetero(h) => h.in_flight(),
        }
    }

    /// The earliest cycle ≥ `now` at which this medium can act (deliver a
    /// flit, emit an ack/nak, or fire a retry timeout), or [`Cycle::MAX`]
    /// if it is drained. The hetero-PHY adapter schedules internally every
    /// cycle while loaded, so it pins the bound to `now` whenever any flit
    /// is in flight — conservative but exact for the skip loop's purposes
    /// (a loaded adapter link keeps its shard active anyway).
    fn next_event_at(&self, now: Cycle) -> Cycle {
        match self {
            Medium::Plain { line, .. } => line.next_ready_at(),
            Medium::Guarded { line, .. } => line.next_event_at(now),
            Medium::Hetero(h) => {
                if h.in_flight() > 0 {
                    now
                } else {
                    Cycle::MAX
                }
            }
        }
    }
}

/// Per-link fault-injection state: one RNG stream and corruption
/// probability per directed link, plus the mutable fault flags scripted
/// events toggle (blocked links, error bursts, lane caps).
///
/// Links with zero probability never draw from their RNG
/// ([`SimRng::chance`] short-circuits at `p <= 0`), so an unarmed core is
/// results-invisible. Every shard builds the full core from the same
/// `(seed, global link id)` forks — the streams are static, so the owner
/// shard's draws are identical whatever the partition.
#[derive(Debug)]
pub(crate) struct FaultCore {
    links: Vec<LinkFault>,
}

#[derive(Debug)]
struct LinkFault {
    rng: SimRng,
    /// Base per-flit corruption probability.
    p: f64,
    burst_mult: f64,
    burst_until: Cycle,
    blocked: bool,
    lane_cap: Option<u8>,
}

impl LinkFault {
    fn draw(&mut self, now: Cycle) -> bool {
        let p = if now < self.burst_until {
            (self.p * self.burst_mult).min(1.0)
        } else {
            self.p
        };
        self.rng.chance(p)
    }
}

impl FaultCore {
    /// Builds the core with per-link corruption probabilities `ps`,
    /// forking one RNG stream per link from `seed`.
    pub fn new(ps: &[f64], seed: u64) -> Self {
        let mut base = SimRng::seed(seed ^ 0xFA_0175);
        Self {
            links: ps
                .iter()
                .enumerate()
                .map(|(i, &p)| LinkFault {
                    rng: base.fork(i as u64),
                    p,
                    burst_mult: 1.0,
                    burst_until: 0,
                    blocked: false,
                    lane_cap: None,
                })
                .collect(),
        }
    }

    fn draw(&mut self, li: usize, now: Cycle) -> bool {
        self.links[li].draw(now)
    }

    pub fn blocked(&self, li: usize) -> bool {
        self.links[li].blocked
    }

    pub fn set_blocked(&mut self, li: usize, blocked: bool) {
        self.links[li].blocked = blocked;
    }

    pub fn set_burst(&mut self, li: usize, mult: f64, until: Cycle) {
        self.links[li].burst_mult = mult;
        self.links[li].burst_until = until;
    }

    pub fn set_lane_cap(&mut self, li: usize, cap: Option<u8>) {
        self.links[li].lane_cap = cap;
    }

    fn lane_cap(&self, li: usize) -> Option<u8> {
        self.links[li].lane_cap
    }

    /// Serializes one link's fault state (checkpoint LINK section). The
    /// RNG stream position matters even when `p == 0` at build time: a
    /// scripted burst may arm draws later.
    pub fn save_link(&self, li: usize, w: &mut ByteWriter) {
        let lf = &self.links[li];
        for word in lf.rng.state() {
            w.put_u64(word);
        }
        w.put_f64(lf.p);
        w.put_f64(lf.burst_mult);
        w.put_u64(lf.burst_until);
        w.put_bool(lf.blocked);
        match lf.lane_cap {
            Some(cap) => {
                w.put_bool(true);
                w.put_u8(cap);
            }
            None => w.put_bool(false),
        }
    }

    /// Decodes one link's fault state written by [`Self::save_link`].
    pub fn read_link(r: &mut ByteReader) -> Result<LinkFaultSnap, CodecError> {
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = r.get_u64()?;
        }
        let p = r.get_f64()?;
        let burst_mult = r.get_f64()?;
        let burst_until = r.get_u64()?;
        let blocked = r.get_bool()?;
        let lane_cap = if r.get_bool()? {
            Some(r.get_u8()?)
        } else {
            None
        };
        Ok(LinkFaultSnap {
            rng,
            p,
            burst_mult,
            burst_until,
            blocked,
            lane_cap,
        })
    }

    /// Overlays a decoded link-fault snapshot. Restore applies the same
    /// snapshot to *every* shard's core (each shard holds the full core;
    /// only the owner draws, so identical copies keep the partition
    /// results-invisible).
    pub fn apply_link(&mut self, li: usize, s: &LinkFaultSnap) {
        let lf = &mut self.links[li];
        lf.rng = SimRng::from_state(s.rng);
        lf.p = s.p;
        lf.burst_mult = s.burst_mult;
        lf.burst_until = s.burst_until;
        lf.blocked = s.blocked;
        lf.lane_cap = s.lane_cap;
    }
}

/// A decoded [`LinkFault`] (checkpoint restore intermediary; read once,
/// applied to every shard's [`FaultCore`] copy).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkFaultSnap {
    rng: [u64; 4],
    p: f64,
    burst_mult: f64,
    burst_until: Cycle,
    /// Whether the link was hard-down at save time (restore replays the
    /// topology edit and route-table invalidation for these).
    pub blocked: bool,
    lane_cap: Option<u8>,
}

/// The static shard layout: which shard owns each node and link.
///
/// Nodes are grouped by chiplet (contiguous chiplet-id ranges), so every
/// cross-shard link is an interface link and intra-chiplet traffic never
/// leaves its shard. A link is owned by the shard of its *source* node:
/// the owner advances the medium (phase 1) and replays returned credits
/// into the source router (credit stage).
#[derive(Debug)]
pub(crate) struct Partition {
    /// Shard count (`min(threads, chiplets)`, at least 1).
    pub nshards: u16,
    /// node index → owning shard.
    pub node_shard: Vec<u16>,
    /// link index → owning shard (= shard of the link's source node).
    pub link_owner: Vec<u16>,
    /// shard → its nodes, ascending.
    pub shard_nodes: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Splits `topo` into up to `threads` chiplet-group shards.
    pub fn new(topo: &SystemTopology, threads: usize) -> Self {
        let geom = topo.geometry();
        let chiplets = (geom.chiplets() as usize).max(1);
        let nshards = threads.clamp(1, chiplets) as u16;
        let nodes = geom.nodes() as usize;
        let mut node_shard = vec![0u16; nodes];
        let mut shard_nodes = vec![Vec::new(); nshards as usize];
        for (i, slot) in node_shard.iter_mut().enumerate() {
            let c = geom.chiplet_of(NodeId(i as u32)).index();
            let s = ((c * nshards as usize) / chiplets) as u16;
            *slot = s;
            shard_nodes[s as usize].push(NodeId(i as u32));
        }
        let link_owner = topo
            .links()
            .iter()
            .map(|l| node_shard[l.src.index()])
            .collect();
        Self {
            nshards,
            node_shard,
            link_owner,
            shard_nodes,
        }
    }
}

/// A flit crossing a shard boundary, by value (the producer freed its
/// arena handle; the consumer re-admits into its own arena).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitMsg {
    /// Global index of the link the flit arrived over.
    pub li: u32,
    /// The flit itself.
    pub flit: Flit,
}

/// A credit issued by a non-owner shard for a link's input buffer,
/// replayed into the owner's credit line next cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditMsg {
    /// Global index of the credited link.
    pub li: u32,
    /// The freed virtual channel.
    pub vc: u8,
}

/// The cross-shard mailbox pair: boundary flits (flushed in phase 1,
/// drained in phase 2) and boundary credits (flushed in phase 2, drained
/// in the next cycle's phase 1).
#[derive(Debug)]
pub(crate) struct Mail {
    pub flits: ShardMailbox<FlitMsg>,
    pub credits: ShardMailbox<CreditMsg>,
}

impl Mail {
    pub fn new(nshards: usize) -> Self {
        Self {
            flits: ShardMailbox::new(nshards),
            credits: ShardMailbox::new(nshards),
        }
    }
}

/// A buffered packet delivery, merged (and its descriptor slot freed) by
/// the orchestrator in ascending-node order — the serial route-stage
/// order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Delivery {
    /// Destination node (the merge sort key).
    pub node: u32,
    /// The delivered packet (freed at merge).
    pub pid: PacketId,
    /// The probe-facing event.
    pub ev: DeliveryEvent,
}

/// The hot-path metric handles every shard shares: which registry cell a
/// given observation lands in. Built once at enable time by the network;
/// cloned into each shard next to its private [`MetricsSlice`].
#[derive(Debug, Clone)]
pub(crate) struct MetricIds {
    /// Per-link ROB-occupancy high-water gauge (hetero-PHY links only).
    pub rob_gauge: Vec<Option<MetricId>>,
    /// Per-PHY dispatch counters, indexed `[parallel, serial]`.
    pub phy_dispatch: [MetricId; 2],
}

/// One shard's metrics state: the shared id map plus its private slice.
/// Wrapped in `Option` on the shard so the disabled path costs one
/// `is_some` check at each (already rare) sampling site.
#[derive(Debug)]
pub(crate) struct ShardMetrics {
    pub ids: MetricIds,
    pub slice: MetricsSlice,
}

#[derive(Debug, Clone, Copy)]
struct InjectState {
    pid: PacketId,
    next_seq: u16,
    vc: u8,
    len: u16,
}

#[derive(Debug, Default)]
pub(crate) struct Nic {
    pub queue: VecDeque<PacketId>,
    cur: Option<InjectState>,
}

impl Nic {
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || self.cur.is_some()
    }

    pub fn pending(&self) -> usize {
        self.queue.len() + usize::from(self.cur.is_some())
    }

    /// Serializes the NIC's dynamic state: the backlog of queued packet
    /// ids plus the in-progress injection cursor.
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.queue.len());
        for pid in &self.queue {
            w.put_u32(pid.0);
        }
        match self.cur {
            Some(st) => {
                w.put_bool(true);
                w.put_u32(st.pid.0);
                w.put_u16(st.next_seq);
                w.put_u8(st.vc);
                w.put_u16(st.len);
            }
            None => w.put_bool(false),
        }
    }

    /// Overlays state written by [`Self::save_state`].
    pub fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let n = r.get_usize()?;
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(PacketId(r.get_u32()?));
        }
        self.cur = if r.get_bool()? {
            Some(InjectState {
                pid: PacketId(r.get_u32()?),
                next_seq: r.get_u16()?,
                vc: r.get_u8()?,
                len: r.get_u16()?,
            })
        } else {
            None
        };
        Ok(())
    }
}

/// One shard's mutable simulation state.
///
/// Vectors are full-length (indexed by global node/link id) with only the
/// owned entries populated — unowned routers are portless stubs that are
/// never activated, unowned media/credit slots are `None`. This keeps
/// every stage's indexing identical to the serial engine at the cost of
/// `O(nshards)` stub storage.
#[derive(Debug)]
pub(crate) struct Shard {
    pub id: u16,
    /// Owned nodes, ascending (scoped route-table prefill, stat sums).
    pub nodes: Vec<NodeId>,
    pub routers: Vec<Router>,
    pub media: Vec<Option<Medium>>,
    pub credit_lines: Vec<Option<CreditLine>>,
    pub faults: FaultCore,
    pub nics: Vec<Nic>,
    /// Flits delivered over each owned directed link.
    pub link_flits: Vec<u64>,
    /// The home of every in-flight flit this shard holds.
    pub arena: FlitArena,
    /// Memoized routes for packets currently at an owned node.
    pub route_table: RouteTable,
    pub active_routers: ActiveSet,
    pub active_media: ActiveSet,
    pub active_credits: ActiveSet,
    pub active_nics: ActiveSet,
    /// Reused drain buffer for the active sets.
    ids: Vec<usize>,
    /// Per-consumer out-buffers, flushed to the mailboxes once per phase.
    out_flits: Vec<Vec<FlitMsg>>,
    out_credits: Vec<Vec<CreditMsg>>,
    /// Order-sensitive observations, merged by the orchestrator.
    pub deliveries: Vec<Delivery>,
    pub link_events: Vec<(u32, LinkEvent)>,
    pub flit_hops: Vec<(u32, bool)>,
    /// Structured trace events for this cycle ([`Tracer::Off`] unless the
    /// network enabled tracing; folded into the hub ring at merge).
    pub tracer: Tracer,
    /// Hot-path metric cells (`None` unless the network enabled metrics).
    pub metrics: Option<ShardMetrics>,
    /// Whether anything moved this cycle (deadlock-watchdog input).
    pub activity: bool,
    /// Cycles in which this shard had activity (per-shard quiescence
    /// accounting; the watchdog ORs `activity` across shards).
    pub active_cycles: u64,
}

impl Shard {
    pub fn new(
        id: u16,
        nodes: Vec<NodeId>,
        node_count: usize,
        link_count: usize,
        nshards: usize,
        faults: FaultCore,
    ) -> Self {
        Self {
            id,
            nodes,
            routers: (0..node_count).map(|_| Router::new(1)).collect(),
            media: (0..link_count).map(|_| None).collect(),
            credit_lines: (0..link_count).map(|_| None).collect(),
            faults,
            nics: (0..node_count).map(|_| Nic::default()).collect(),
            link_flits: vec![0; link_count],
            arena: FlitArena::new(),
            route_table: RouteTable::new(),
            active_routers: ActiveSet::new(node_count),
            active_media: ActiveSet::new(link_count),
            active_credits: ActiveSet::new(link_count),
            active_nics: ActiveSet::new(node_count),
            ids: Vec::new(),
            out_flits: (0..nshards).map(|_| Vec::new()).collect(),
            out_credits: (0..nshards).map(|_| Vec::new()).collect(),
            deliveries: Vec::new(),
            link_events: Vec::new(),
            flit_hops: Vec::new(),
            tracer: Tracer::Off,
            metrics: None,
            activity: false,
            active_cycles: 0,
        }
    }

    /// Whether every per-cycle scratch buffer is empty. True exactly at
    /// the between-cycles checkpoint boundary: out-buffers are flushed
    /// within their phase and observation buffers are cleared at merge,
    /// so none of them carry state a checkpoint would need.
    pub fn scratch_empty(&self) -> bool {
        self.out_flits.iter().all(Vec::is_empty)
            && self.out_credits.iter().all(Vec::is_empty)
            && self.deliveries.is_empty()
            && self.link_events.is_empty()
            && self.flit_hops.is_empty()
    }

    /// The earliest cycle ≥ `now` at which this shard can make progress,
    /// or [`Cycle::MAX`] if nothing is scheduled.
    ///
    /// Active routers and NICs act *every* cycle (pipeline stages and
    /// injection have no future timestamp), so either being non-empty
    /// pins the bound to `now`. Active media and credit lines are timed:
    /// their members stay in the set with future dues, and the minimum of
    /// those dues bounds the next delivery, ack, or retry timeout. The
    /// bound is what the idle-skip loop uses — it never needs to be
    /// tight, only never *late*.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if !self.active_routers.is_empty() || !self.active_nics.is_empty() {
            return now;
        }
        let mut at = Cycle::MAX;
        for li in self.active_media.iter() {
            let m = self.media[li].as_ref().expect("unowned active medium");
            at = at.min(m.next_event_at(now));
        }
        for li in self.active_credits.iter() {
            let line = self.credit_lines[li].as_ref().expect("unowned credit");
            at = at.min(line.next_ready_at());
        }
        at
    }

    /// Phase 1 of a cycle: inbound credit replay → credit stage → media
    /// stage → boundary-flit flush.
    pub fn phase1(
        &mut self,
        ctx: &EngineCtx<'_>,
        now: Cycle,
        store: &PacketStore,
        mail: &Mail,
        record_hops: bool,
        part: &Partition,
    ) {
        self.activity = false;
        let sid = self.id as usize;
        {
            // Replay credits the consumer shards issued in last cycle's
            // phase 2. `send(now - 1, vc)` reproduces the serial engine's
            // call at the original cycle exactly — a credit line buffers
            // `(t + latency, vc)` and latency ≥ 1, so nothing was due
            // before this cycle. (No message can exist at cycle 0.)
            let Shard {
                credit_lines,
                active_credits,
                ..
            } = self;
            mail.credits.drain(sid, |_, m: CreditMsg| {
                let li = m.li as usize;
                credit_lines[li]
                    .as_mut()
                    .expect("credit routed to non-owner")
                    .send(now - 1, m.vc);
                active_credits.insert(li);
            });
        }
        self.stage_credits(ctx, now);
        self.stage_media(ctx, now, store, record_hops, part);
        for consumer in 0..part.nshards as usize {
            mail.flits
                .append(sid, consumer, &mut self.out_flits[consumer]);
        }
    }

    /// Phase 2 of a cycle: inbound flit delivery → inject stage → route
    /// stage → boundary-credit flush.
    pub fn phase2(
        &mut self,
        ctx: &EngineCtx<'_>,
        now: Cycle,
        store: &PacketStore,
        mail: &Mail,
        measure_from: Cycle,
        part: &Partition,
    ) {
        let sid = self.id as usize;
        {
            // Boundary flits land in the destination router before it
            // routes this cycle — the same point in the cycle the serial
            // media stage would have delivered them.
            let Shard {
                routers,
                arena,
                active_routers,
                activity,
                ..
            } = self;
            mail.flits.drain(sid, |_, m: FlitMsg| {
                let link = ctx.topo.link(LinkId(m.li));
                let dst = link.dst.index();
                let fref = arena.alloc(m.flit);
                routers[dst].receive(ctx.link_in_port[m.li as usize], fref, m.flit.vc);
                active_routers.insert(dst);
                *activity = true;
            });
        }
        self.stage_inject(ctx, now, store);
        self.stage_route(ctx, now, store, measure_from, part);
        for consumer in 0..part.nshards as usize {
            mail.credits
                .append(sid, consumer, &mut self.out_credits[consumer]);
        }
    }

    /// Completed credit returns are restored to the transmitting router.
    fn stage_credits(&mut self, ctx: &EngineCtx<'_>, now: Cycle) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_credits.drain_into(&mut ids);
        for &li in &ids {
            let line = self.credit_lines[li].as_mut().expect("unowned credit line");
            let link = ctx.topo.link(LinkId(li as u32));
            let port = ctx.link_out_port[li];
            while let Some(vc) = line.pop_ready(now) {
                // Credits top up counters only; they cannot give a
                // quiescent router work, so no router activation here.
                self.routers[link.src.index()].add_credit(port, vc);
            }
            if line.in_flight() > 0 {
                self.active_credits.insert(li);
            }
        }
        self.ids = ids;
    }

    /// Media deliver arrived flits: into the local input buffers when the
    /// destination router is owned, into the destination shard's mailbox
    /// otherwise. All per-link/per-packet accounting happens here, at the
    /// owner — the serial engine's accounting site.
    fn stage_media(
        &mut self,
        ctx: &EngineCtx<'_>,
        now: Cycle,
        store: &PacketStore,
        record_hops: bool,
        part: &Partition,
    ) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_media.drain_into(&mut ids);
        let sid = self.id;
        let Shard {
            routers,
            media,
            link_flits,
            active_routers,
            active_media,
            activity,
            faults,
            arena,
            out_flits,
            link_events,
            flit_hops,
            tracer,
            metrics,
            ..
        } = self;
        for &li in &ids {
            let link = ctx.topo.link(LinkId(li as u32));
            let in_port = ctx.link_in_port[li];
            let dst = link.dst.index();
            let dst_shard = part.node_shard[dst];
            let local = dst_shard == sid;
            match media[li].as_mut().expect("stepping unowned medium") {
                Medium::Plain { line, class } => {
                    line.drain_ready(now, |fref| {
                        let flit = arena.get(fref);
                        link_flits[li] += 1;
                        let info = store.get(flit.pid);
                        match class {
                            LinkClass::OnChip => {
                                info.onchip_flits.fetch_add(1, Relaxed);
                            }
                            LinkClass::Parallel => {
                                info.parallel_flits.fetch_add(1, Relaxed);
                            }
                            LinkClass::Serial => {
                                info.serial_flits.fetch_add(1, Relaxed);
                            }
                            LinkClass::HeteroPhy => unreachable!(),
                        }
                        if flit.is_head() {
                            info.hops.fetch_add(1, Relaxed);
                        }
                        if record_hops {
                            flit_hops.push((li as u32, flit.is_head()));
                        }
                        tracer.emit(
                            link_key(li as u32),
                            now,
                            TraceKind::Hop,
                            flit.pid.0,
                            li as u32,
                            flit.is_head() as u32,
                        );
                        if local {
                            routers[dst].receive(in_port, fref, flit.vc);
                            active_routers.insert(dst);
                        } else {
                            let flit = arena.free(fref);
                            out_flits[dst_shard as usize].push(FlitMsg {
                                li: li as u32,
                                flit,
                            });
                        }
                        *activity = true;
                    });
                }
                Medium::Guarded { line, class } => {
                    {
                        let lf = &mut faults.links[li];
                        let mut corrupt = || lf.draw(now);
                        let mut ev = |e: LinkEvent| {
                            link_events.push((li as u32, e));
                            tracer.emit(
                                link_key(li as u32),
                                now,
                                TraceKind::Link,
                                NO_PID,
                                li as u32,
                                link_event_code(e),
                            );
                            if e == LinkEvent::Retransmit {
                                // Recovery traffic is forward progress: it
                                // must hold the deadlock watchdog off.
                                *activity = true;
                            }
                        };
                        line.advance(now, arena, &mut corrupt, &mut ev);
                    }
                    line.drain_delivered(|fref| {
                        let flit = arena.get(fref);
                        link_flits[li] += 1;
                        let info = store.get(flit.pid);
                        match class {
                            LinkClass::OnChip => {
                                info.onchip_flits.fetch_add(1, Relaxed);
                            }
                            LinkClass::Parallel => {
                                info.parallel_flits.fetch_add(1, Relaxed);
                            }
                            LinkClass::Serial => {
                                info.serial_flits.fetch_add(1, Relaxed);
                            }
                            LinkClass::HeteroPhy => unreachable!(),
                        }
                        if flit.is_head() {
                            info.hops.fetch_add(1, Relaxed);
                        }
                        if record_hops {
                            flit_hops.push((li as u32, flit.is_head()));
                        }
                        tracer.emit(
                            link_key(li as u32),
                            now,
                            TraceKind::Hop,
                            flit.pid.0,
                            li as u32,
                            flit.is_head() as u32,
                        );
                        if local {
                            routers[dst].receive(in_port, fref, flit.vc);
                            active_routers.insert(dst);
                        } else {
                            let flit = arena.free(fref);
                            out_flits[dst_shard as usize].push(FlitMsg {
                                li: li as u32,
                                flit,
                            });
                        }
                        *activity = true;
                    });
                }
                Medium::Hetero(h) => {
                    {
                        let mut ev = |e: LinkEvent| {
                            link_events.push((li as u32, e));
                            tracer.emit(
                                link_key(li as u32),
                                now,
                                TraceKind::Link,
                                NO_PID,
                                li as u32,
                                link_event_code(e),
                            );
                            if e == LinkEvent::Retransmit {
                                *activity = true;
                            }
                        };
                        h.advance_observed(now, &mut ev);
                    }
                    while let Some((flit, kind)) = h.pop_delivered() {
                        link_flits[li] += 1;
                        let info = store.get(flit.pid);
                        let lane = match kind {
                            PhyKind::Parallel => 0usize,
                            PhyKind::Serial => 1usize,
                        };
                        match kind {
                            PhyKind::Parallel => {
                                info.parallel_flits.fetch_add(1, Relaxed);
                            }
                            PhyKind::Serial => {
                                info.serial_flits.fetch_add(1, Relaxed);
                            }
                        }
                        if flit.is_head() {
                            info.hops.fetch_add(1, Relaxed);
                        }
                        if record_hops {
                            flit_hops.push((li as u32, flit.is_head()));
                        }
                        tracer.emit(
                            link_key(li as u32),
                            now,
                            TraceKind::PhyDispatch,
                            flit.pid.0,
                            li as u32,
                            lane as u32,
                        );
                        if let Some(m) = metrics.as_mut() {
                            m.slice.add(m.ids.phy_dispatch[lane], 1);
                        }
                        if local {
                            // Back from the adapter's value-world: re-admit.
                            let fref = arena.alloc(flit);
                            routers[dst].receive(in_port, fref, flit.vc);
                            active_routers.insert(dst);
                        } else {
                            out_flits[dst_shard as usize].push(FlitMsg {
                                li: li as u32,
                                flit,
                            });
                        }
                        *activity = true;
                    }
                    if let Some(m) = metrics.as_mut() {
                        if let Some(id) = m.ids.rob_gauge[li] {
                            // Sampled after `advance_observed`, matching the
                            // occupancy definition the Eq. 1 bound is
                            // checked against.
                            m.slice.raise(id, h.rob_occupancy() as u64);
                        }
                    }
                }
            }
            if media[li].as_ref().expect("unowned medium").in_flight() > 0 {
                active_media.insert(li);
            }
        }
        self.ids = ids;
    }

    /// NICs stream queued packets into injection ports.
    fn stage_inject(&mut self, ctx: &EngineCtx<'_>, now: Cycle, store: &PacketStore) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_nics.drain_into(&mut ids);
        for &node in &ids {
            let nic = &mut self.nics[node];
            let router = &mut self.routers[node];
            let mut budget = ctx.config.inj_bandwidth;
            while budget > 0 {
                if nic.cur.is_none() {
                    let Some(&pid) = nic.queue.front() else { break };
                    let Some(vc) = (0..ctx.config.vcs).find(|&v| router.in_vc_idle(0, v)) else {
                        break;
                    };
                    nic.queue.pop_front();
                    nic.cur = Some(InjectState {
                        pid,
                        next_seq: 0,
                        vc,
                        len: store.get(pid).len,
                    });
                }
                let st = nic.cur.as_mut().expect("just set");
                let mut moved = false;
                while budget > 0 && st.next_seq < st.len && router.in_space(0, st.vc) > 0 {
                    if st.next_seq == 0 {
                        let info = store.get(st.pid);
                        info.injected.store(now, Relaxed);
                        self.tracer.emit(
                            node_key(node as u32),
                            now,
                            TraceKind::Inject,
                            st.pid.0,
                            node as u32,
                            info.dst.index() as u32,
                        );
                    }
                    let fref = self.arena.alloc(Flit {
                        pid: st.pid,
                        seq: st.next_seq,
                        vc: st.vc,
                        last: st.next_seq + 1 == st.len,
                    });
                    router.receive(0, fref, st.vc);
                    self.active_routers.insert(node);
                    st.next_seq += 1;
                    budget -= 1;
                    moved = true;
                    self.activity = true;
                }
                if st.next_seq == st.len {
                    nic.cur = None;
                } else if !moved {
                    break;
                }
            }
            if nic.has_work() {
                self.active_nics.insert(node);
            }
        }
        self.ids = ids;
    }

    /// Every active owned router runs its RC/VA/SA pipeline.
    fn stage_route(
        &mut self,
        ctx: &EngineCtx<'_>,
        now: Cycle,
        store: &PacketStore,
        measure_from: Cycle,
        part: &Partition,
    ) {
        let mut ids = std::mem::take(&mut self.ids);
        self.active_routers.drain_into(&mut ids);
        let mut routers = std::mem::take(&mut self.routers);
        // One environment for the whole sweep; only the per-node fields
        // are rewritten between routers.
        let mut env = ShardEnv {
            now,
            node: NodeId(0),
            topo: ctx.topo,
            routing: ctx.routing,
            store,
            media: &mut self.media,
            credit_lines: &mut self.credit_lines,
            faults: &mut self.faults,
            outport_link: &[],
            inport_link: &[],
            vcs: ctx.config.vcs,
            eject_budget: 0,
            energy_model: ctx.energy_model,
            measure_from,
            route_table: &mut self.route_table,
            link_out_port: ctx.link_out_port,
            link_owner: &part.link_owner,
            sid: self.id,
            activity: &mut self.activity,
            active_media: &mut self.active_media,
            active_credits: &mut self.active_credits,
            deliveries: &mut self.deliveries,
            out_credits: &mut self.out_credits,
            tracer: &mut self.tracer,
        };
        for &node in &ids {
            let router = &mut routers[node];
            if router.is_quiescent() {
                continue;
            }
            env.node = NodeId(node as u32);
            env.outport_link = &ctx.outport_links[node];
            env.inport_link = &ctx.inport_links[node];
            env.eject_budget = ctx.config.eject_bandwidth as u16;
            router.step(now, &mut env, &mut self.arena);
            if !router.is_quiescent() {
                self.active_routers.insert(node);
            }
        }
        self.routers = routers;
        self.ids = ids;
    }
}

/// The router's window onto its shard during [`Shard::stage_route`].
struct ShardEnv<'a> {
    now: Cycle,
    node: NodeId,
    topo: &'a SystemTopology,
    routing: &'a dyn Routing,
    store: &'a PacketStore,
    media: &'a mut [Option<Medium>],
    credit_lines: &'a mut [Option<CreditLine>],
    faults: &'a mut FaultCore,
    /// out_port (1-based; 0 is ejection) → LinkId, per this node.
    outport_link: &'a [LinkId],
    /// in_port (1-based; 0 is injection) → LinkId, per this node.
    inport_link: &'a [LinkId],
    vcs: u8,
    eject_budget: u16,
    energy_model: &'a EnergyModel,
    measure_from: Cycle,
    route_table: &'a mut RouteTable,
    /// LinkId → out port on its source router (1-based), global map.
    link_out_port: &'a [u16],
    /// LinkId → owning shard, global map.
    link_owner: &'a [u16],
    sid: u16,
    activity: &'a mut bool,
    active_media: &'a mut ActiveSet,
    active_credits: &'a mut ActiveSet,
    deliveries: &'a mut Vec<Delivery>,
    out_credits: &'a mut [Vec<CreditMsg>],
    tracer: &'a mut Tracer,
}

impl RouterEnv for ShardEnv<'_> {
    fn route(&mut self, pid: PacketId, out: &mut Vec<PortCandidate>) {
        let info = self.store.get(pid);
        if info.dst == self.node {
            for vc in 0..self.vcs {
                out.push(PortCandidate {
                    out_port: 0,
                    vc,
                    baseline: true,
                    tier: 0,
                });
            }
            return;
        }
        let state = info.route_state();
        let cands = self
            .route_table
            .lookup(self.routing, self.topo, self.node, info.dst, &state);
        debug_assert!(
            !cands.is_empty(),
            "no route from {} to {}",
            self.node,
            info.dst
        );
        for c in cands {
            // Links leaving this node occupy out ports 1.. in adjacency
            // order; the network precomputed the link → out-port map.
            let port = self.link_out_port[c.link.index()];
            debug_assert_eq!(
                self.outport_link[(port - 1) as usize],
                c.link,
                "candidate link leaves this node"
            );
            out.push(PortCandidate {
                out_port: port,
                vc: c.vc,
                baseline: c.baseline,
                tier: c.tier,
            });
        }
    }

    fn out_capacity(&mut self, out_port: u16) -> u16 {
        if out_port == 0 {
            return self.eject_budget;
        }
        let link = self.outport_link[(out_port - 1) as usize];
        let li = link.index();
        if self.faults.blocked(li) {
            return 0; // hard-failed link: nothing enters (upstream stalls)
        }
        let cap = match self.media[li].as_mut().expect("out over unowned link") {
            Medium::Plain { line, .. } => line.capacity(self.now) as u16,
            Medium::Guarded { line, .. } => line.capacity(self.now) as u16,
            Medium::Hetero(h) => h.space(),
        };
        match self.faults.lane_cap(li) {
            Some(lanes) => cap.min(lanes as u16),
            None => cap,
        }
    }

    fn send(&mut self, out_port: u16, fref: FlitRef, arena: &mut FlitArena) {
        *self.activity = true;
        if out_port == 0 {
            debug_assert!(self.eject_budget > 0);
            self.eject_budget -= 1;
            let now = self.now;
            let flit = arena.free(fref);
            let info = self.store.get(flit.pid);
            debug_assert_eq!(info.dst, self.node, "flit ejected at wrong node");
            let prev = info.ejected.fetch_add(1, Relaxed);
            debug_assert_eq!(prev, flit.seq, "out-of-order ejection");
            if flit.last {
                debug_assert_eq!(prev + 1, info.len, "flit loss detected");
                let ev = delivery_event(now, info, self.energy_model, self.measure_from);
                self.tracer.emit(
                    node_key(self.node.0),
                    now,
                    TraceKind::Eject,
                    flit.pid.0,
                    self.node.0,
                    ev.hops,
                );
                // The descriptor slot is freed at merge, in ascending-node
                // order across shards — the serial free order, keeping
                // PacketId recycling bit-identical.
                self.deliveries.push(Delivery {
                    node: self.node.0,
                    pid: flit.pid,
                    ev,
                });
            }
            return;
        }
        let link = self.outport_link[(out_port - 1) as usize];
        self.active_media.insert(link.index());
        match self.media[link.index()]
            .as_mut()
            .expect("send over unowned link")
        {
            Medium::Plain { line, .. } => {
                let ok = line.try_send(self.now, fref);
                debug_assert!(ok, "plain link over capacity");
            }
            Medium::Guarded { line, .. } => {
                // Corruption strikes the wire at transmission time; the
                // receiver's CRC catches it and the replay buffer recovers.
                let corrupt = self.faults.draw(link.index(), self.now);
                let ok = line.try_send(self.now, fref, arena, corrupt);
                debug_assert!(ok, "guarded link over capacity");
            }
            Medium::Hetero(h) => {
                // The adapter owns flits by value; the handle rejoins the
                // arena when the flit emerges on the far side.
                let flit = arena.free(fref);
                let info = self.store.get(flit.pid);
                h.push(self.now, flit, info.class, info.priority);
            }
        }
    }

    fn credit(&mut self, in_port: u16, vc: u8) {
        if in_port == 0 {
            return; // injection port: the NIC reads buffer space directly
        }
        let link = self.inport_link[(in_port - 1) as usize];
        let li = link.index();
        let owner = self.link_owner[li];
        if owner == self.sid {
            self.credit_lines[li]
                .as_mut()
                .expect("owner holds the credit line")
                .send(self.now, vc);
            self.active_credits.insert(li);
        } else {
            // The credit line lives with the link's source shard; post the
            // credit for replay at the top of the next cycle.
            self.out_credits[owner as usize].push(CreditMsg { li: li as u32, vc });
        }
    }

    fn note_baseline_lock(&mut self, pid: PacketId) {
        self.store.get(pid).baseline_locked.store(true, Relaxed);
    }

    #[inline]
    fn on_pipeline(&mut self, stage: PipelineStage, pid: PacketId, info: u32) {
        let kind = match stage {
            PipelineStage::RouteCompute => TraceKind::RouteCompute,
            PipelineStage::VcAlloc => TraceKind::VcAlloc,
            PipelineStage::SwitchTraverse => TraceKind::SwitchTraverse,
        };
        self.tracer.emit(
            node_key(self.node.0),
            self.now,
            kind,
            pid.0,
            self.node.0,
            info,
        );
    }
}

/// Builds the probe-facing summary of a packet at tail ejection.
fn delivery_event(
    now: Cycle,
    info: &PacketInfo,
    energy_model: &EnergyModel,
    measure_from: Cycle,
) -> DeliveryEvent {
    let e = energy_model.packet(info);
    DeliveryEvent {
        now,
        created: info.created,
        injected: info.injected.load(Relaxed),
        hops: info.hops.load(Relaxed),
        len: info.len,
        high_priority: info.priority == chiplet_noc::Priority::High,
        baseline_locked: info.baseline_locked.load(Relaxed),
        measured: info.created >= measure_from,
        tag: info.tag,
        onchip_pj: e.onchip_pj,
        parallel_pj: e.parallel_pj,
        serial_pj: e.serial_pj,
    }
}

//! The energy model of §8.3.
//!
//! Per-packet energy is the sum over the packet's flit-hops of the energy
//! of the medium crossed: 1 pJ/bit for parallel interfaces, 2.4 pJ/bit for
//! serial interfaces (the paper's §8.3 constants) and an on-chip per-hop
//! cost (0.10 pJ/bit — a typical mesh-NoC link+router figure; the paper
//! leaves it implicit, see DESIGN.md).

use chiplet_noc::PacketInfo;

/// Energy coefficients in pJ/bit, plus the flit width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// On-chip hop energy, pJ/bit.
    pub onchip_pj_bit: f64,
    /// Parallel interface energy, pJ/bit.
    pub parallel_pj_bit: f64,
    /// Serial interface energy, pJ/bit.
    pub serial_pj_bit: f64,
    /// Flit width in bits.
    pub flit_bits: u32,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            onchip_pj_bit: 0.10,
            parallel_pj_bit: 1.0,
            serial_pj_bit: 2.4,
            flit_bits: 64,
        }
    }
}

/// Per-packet energy decomposition in pJ.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PacketEnergy {
    /// Energy spent on on-chip hops.
    pub onchip_pj: f64,
    /// Energy spent on parallel interface crossings.
    pub parallel_pj: f64,
    /// Energy spent on serial interface crossings.
    pub serial_pj: f64,
}

impl PacketEnergy {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.onchip_pj + self.parallel_pj + self.serial_pj
    }

    /// Interface-only energy (parallel + serial) in pJ.
    pub fn interface_pj(&self) -> f64 {
        self.parallel_pj + self.serial_pj
    }
}

impl EnergyModel {
    /// Energy of one delivered packet, from its flit-hop counters.
    pub fn packet(&self, info: &PacketInfo) -> PacketEnergy {
        use std::sync::atomic::Ordering::Relaxed;
        let bits = self.flit_bits as f64;
        PacketEnergy {
            onchip_pj: info.onchip_flits.load(Relaxed) as f64 * bits * self.onchip_pj_bit,
            parallel_pj: info.parallel_flits.load(Relaxed) as f64 * bits * self.parallel_pj_bit,
            serial_pj: info.serial_flits.load(Relaxed) as f64 * bits * self.serial_pj_bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_noc::{OrderClass, Priority};
    use chiplet_topo::NodeId;

    #[test]
    fn decomposition_matches_counters() {
        use std::sync::atomic::Ordering::Relaxed;
        let m = EnergyModel::default();
        let info = PacketInfo::new(
            NodeId(0),
            NodeId(1),
            16,
            OrderClass::InOrder,
            Priority::Normal,
            0,
        );
        info.onchip_flits.store(10, Relaxed);
        info.parallel_flits.store(16, Relaxed);
        info.serial_flits.store(4, Relaxed);
        let e = m.packet(&info);
        assert!((e.onchip_pj - 10.0 * 64.0 * 0.10).abs() < 1e-9);
        assert!((e.parallel_pj - 16.0 * 64.0).abs() < 1e-9);
        assert!((e.serial_pj - 4.0 * 64.0 * 2.4).abs() < 1e-9);
        assert!((e.total_pj() - (e.onchip_pj + e.interface_pj())).abs() < 1e-9);
    }

    #[test]
    fn serial_crossing_costs_more_than_parallel() {
        let m = EnergyModel::default();
        assert!(m.serial_pj_bit > 2.0 * m.parallel_pj_bit);
        assert!(m.parallel_pj_bit > m.onchip_pj_bit);
    }
}

//! Simulation configuration (Table 2 of the paper).

use chiplet_fault::FaultConfig;
use chiplet_phy::{PhyParams, PhyPolicy};

/// Bandwidth/latency of one uniform link class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Flits per cycle.
    pub bandwidth: u8,
    /// Propagation delay in cycles (the transmission stage adds one more).
    pub latency: u32,
}

/// Whether hetero-IF interfaces run at full width or pin-constrained
/// halved width (§7.2: "the halved hetero-IF combines two halved standard
/// interfaces to restrict the total number of I/O pins").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandwidthMode {
    /// Serial 4 + parallel 2 flits/cycle.
    Full,
    /// Serial 2 + parallel 1 flits/cycle.
    Halved,
}

impl std::fmt::Display for BandwidthMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BandwidthMode::Full => "full",
            BandwidthMode::Halved => "half",
        })
    }
}

/// The simulator configuration. Defaults reproduce Table 2.
///
/// Buffer sizes are per virtual channel, matching Fig. 9(b)'s "two separate
/// buffers (virtual channels) at each input port" reading of Table 2's
/// "input buffer size" rows; interface buffers are deeper to cover the
/// credit round trip over long links (§7.1's feedback-lag buffer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Virtual channels per link.
    pub vcs: u8,
    /// Default packet length in flits (used by synthetic workloads).
    pub packet_len: u16,
    /// Input VC buffer depth for on-chip links, flits.
    pub onchip_vc_depth: u16,
    /// Input VC buffer depth for interface links, flits.
    pub iface_vc_depth: u16,
    /// Injection VC buffer depth, flits.
    pub inj_vc_depth: u16,
    /// Injection port bandwidth, flits/cycle.
    pub inj_bandwidth: u8,
    /// Ejection port bandwidth, flits/cycle (sized so local delivery never
    /// bottlenecks a wide interface; the paper leaves this unspecified).
    pub eject_bandwidth: u8,
    /// On-chip link parameters.
    pub onchip: LinkParams,
    /// Parallel interface parameters.
    pub parallel: LinkParams,
    /// Serial interface parameters.
    pub serial: LinkParams,
    /// Hetero-IF width mode.
    pub bandwidth_mode: BandwidthMode,
    /// Hetero-PHY dispatch policy.
    pub phy_policy: PhyPolicy,
    /// Hetero-PHY TX FIFO depth (§8.2 uses 16).
    pub adapter_fifo: u16,
    /// §4.1 higher-radix crossbar at interface ports: when `true`
    /// (default) multiple internal ports can feed one interface
    /// concurrently up to its full bandwidth; when `false` interface
    /// ports are fed at on-chip bandwidth like a traditional router
    /// (ablation knob — shows why the heterogeneous router exists).
    pub higher_radix_crossbar: bool,
    /// §4.2 parallel-PHY bypass for high-priority packets (ablation knob).
    pub adapter_bypass: bool,
    /// RNG seed for workloads built from this config.
    pub seed: u64,
    /// Shard-thread count for the parallel cycle loop. `1` runs the
    /// engine serially on the calling thread; `0` resolves to the host's
    /// available parallelism; `N > 1` partitions the network into up to
    /// `N` chiplet-group shards driven by a persistent worker pool.
    /// Results are bit-identical at every value — this knob only trades
    /// wall-clock time. The default honors the `HETERO_SIM_THREADS`
    /// environment variable (read once per process) and falls back to 1.
    pub shard_threads: usize,
    /// Idle-skip: when the whole network is quiescent, the run loop
    /// elides engine steps up to the computed next-event cycle instead
    /// of ticking empty routers. A skipped cycle is provably a total
    /// state no-op, so results are bit-identical either way — this knob
    /// only trades wall-clock time (like `shard_threads`, it is excluded
    /// from [`SimConfig::canonical_key`]). The default honors the
    /// `HETERO_SIM_SKIP` environment variable (read once per process;
    /// `0` disables) and falls back to enabled.
    pub idle_skip: bool,
    /// Fault-model knobs (BER injection and the retry link layer). The
    /// default is fully off, in which case the network is built — and
    /// runs — bit-identically to a build without the fault subsystem.
    pub fault: FaultConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            vcs: 2,
            packet_len: 16,
            onchip_vc_depth: 32,
            iface_vc_depth: 64,
            inj_vc_depth: 32,
            inj_bandwidth: 2,
            eject_bandwidth: 4,
            onchip: LinkParams {
                bandwidth: 2,
                latency: 1,
            },
            parallel: LinkParams {
                bandwidth: 2,
                latency: 5,
            },
            serial: LinkParams {
                bandwidth: 4,
                latency: 20,
            },
            bandwidth_mode: BandwidthMode::Full,
            phy_policy: PhyPolicy::Balanced { threshold: 8 },
            adapter_fifo: 16,
            higher_radix_crossbar: true,
            adapter_bypass: true,
            seed: 0xC41_1BE7,
            shard_threads: default_shard_threads(),
            idle_skip: default_idle_skip(),
            fault: FaultConfig::default(),
        }
    }
}

/// The process-wide default for [`SimConfig::shard_threads`]: the
/// `HETERO_SIM_THREADS` environment variable when set to a valid count
/// (`0` = auto), else 1 (serial). Cached so every `SimConfig::default()`
/// in a run agrees even if the environment is mutated mid-process.
fn default_shard_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("HETERO_SIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
    })
}

/// The process-wide default for [`SimConfig::idle_skip`]: disabled when
/// the `HETERO_SIM_SKIP` environment variable is set to `0`, else
/// enabled. Cached once per process like the thread default, so a run's
/// configs agree even if the environment is mutated mid-process.
fn default_idle_skip() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("HETERO_SIM_SKIP")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

impl SimConfig {
    /// The halved-bandwidth (pin-constrained) variant of this config.
    pub fn halved(mut self) -> Self {
        self.bandwidth_mode = BandwidthMode::Halved;
        self
    }

    /// Replaces the hetero-PHY dispatch policy.
    pub fn with_policy(mut self, policy: PhyPolicy) -> Self {
        self.phy_policy = policy;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the §4.1 higher-radix interface crossbar (ablation).
    pub fn without_higher_radix_crossbar(mut self) -> Self {
        self.higher_radix_crossbar = false;
        self
    }

    /// Disables the §4.2 parallel-PHY bypass (ablation).
    pub fn without_bypass(mut self) -> Self {
        self.adapter_bypass = false;
        self
    }

    /// Replaces the shard-thread count (0 = auto from core count).
    ///
    /// An explicit override always wins over the `HETERO_SIM_THREADS`
    /// pin that seeded [`SimConfig::default`] — in particular, a network
    /// built with this override and then fed a checkpoint
    /// ([`crate::Network::restore`]) runs at *this* shard count, not the
    /// saving run's and not the environment's (`tests/env_pin.rs` pins
    /// this; checkpoints are shard-count-portable by design).
    pub fn with_shard_threads(mut self, threads: usize) -> Self {
        self.shard_threads = threads;
        self
    }

    /// Replaces the idle-skip setting (results are bit-identical either
    /// way; `false` forces the per-cycle ticking loop — the differential
    /// fuzz suite uses this to compare the two in one process).
    pub fn with_idle_skip(mut self, skip: bool) -> Self {
        self.idle_skip = skip;
        self
    }

    /// [`SimConfig::shard_threads`] with `0` resolved to the host's
    /// available parallelism.
    pub fn resolved_shard_threads(&self) -> usize {
        if self.shard_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.shard_threads
        }
    }

    /// Replaces the fault-model block.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Sweeps the serial-wire BER (parallel wires scale along at the
    /// Table-1 family ratio) with the retry layer armed.
    pub fn with_ber(self, ber: f64) -> Self {
        self.with_fault(FaultConfig::with_ber(ber))
    }

    /// Arms the retry link layer at the current error rates (protocol
    /// overhead is measurable even at BER = 0).
    pub fn with_retry(mut self) -> Self {
        self.fault.retry = true;
        self
    }

    /// A canonical, human-readable key of every behavior-affecting field,
    /// in a fixed order with normalized values (`shard_threads` and
    /// `idle_skip` are excluded — they only trade wall-clock time and
    /// never change results). Two configs with equal keys produce bit-identical
    /// simulations on the same topology; estimation caches and
    /// calibration reports key on this.
    pub fn canonical_key(&self) -> String {
        format!(
            "vcs={};plen={};depth={}/{}/{};inj={};eject={};onchip={}@{};parallel={}@{};\
             serial={}@{};mode={};policy={:?};fifo={};radix={};bypass={};seed={};\
             ber={:e}/{:e};retry={};retry_timeout={}",
            self.vcs,
            self.packet_len,
            self.onchip_vc_depth,
            self.iface_vc_depth,
            self.inj_vc_depth,
            self.inj_bandwidth,
            self.eject_bandwidth,
            self.onchip.bandwidth,
            self.onchip.latency,
            self.parallel.bandwidth,
            self.parallel.latency,
            self.serial.bandwidth,
            self.serial.latency,
            self.bandwidth_mode,
            self.phy_policy,
            self.adapter_fifo,
            self.higher_radix_crossbar,
            self.adapter_bypass,
            self.seed,
            self.fault.ber_serial,
            self.fault.ber_parallel,
            self.fault.retry,
            self.fault.retry_timeout,
        )
    }

    /// The SHA-256 content hash of [`SimConfig::canonical_key`]: the
    /// collision-resistant config identity used by the persistent result
    /// cache ([`crate::cache`]). Unlike [`SimConfig::fingerprint`], which
    /// is a 64-bit FNV label good enough for in-process reports, this is
    /// safe to key a durable, shared store on.
    pub fn content_hash(&self) -> [u8; 32] {
        simkit::hash::sha256(self.canonical_key().as_bytes())
    }

    /// A 64-bit FNV-1a fingerprint of [`SimConfig::canonical_key`]: a
    /// compact config identity for reports and caches.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_key().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The hetero-PHY parameters under the current bandwidth mode.
    pub fn phy_params(&self) -> PhyParams {
        match self.bandwidth_mode {
            BandwidthMode::Full => PhyParams {
                parallel_bw: self.parallel.bandwidth,
                parallel_lat: self.parallel.latency,
                serial_bw: self.serial.bandwidth,
                serial_lat: self.serial.latency,
            },
            BandwidthMode::Halved => PhyParams {
                parallel_bw: (self.parallel.bandwidth / 2).max(1),
                parallel_lat: self.parallel.latency,
                serial_bw: (self.serial.bandwidth / 2).max(1),
                serial_lat: self.serial.latency,
            },
        }
    }

    /// Serial link parameters under the current bandwidth mode (hetero-IF
    /// systems also halve their serial-only wraparound links, §8.1.1).
    pub fn serial_params_scaled(&self) -> LinkParams {
        match self.bandwidth_mode {
            BandwidthMode::Full => self.serial,
            BandwidthMode::Halved => LinkParams {
                bandwidth: (self.serial.bandwidth / 2).max(1),
                latency: self.serial.latency,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = SimConfig::default();
        assert_eq!(c.packet_len, 16);
        assert_eq!(c.vcs, 2);
        assert_eq!(c.onchip.bandwidth, 2);
        assert_eq!(c.onchip.latency, 1);
        assert_eq!(c.parallel.bandwidth, 2);
        assert_eq!(c.parallel.latency, 5);
        assert_eq!(c.serial.bandwidth, 4);
        assert_eq!(c.serial.latency, 20);
    }

    #[test]
    fn halved_mode_halves_interfaces_only() {
        let c = SimConfig::default().halved();
        let p = c.phy_params();
        assert_eq!(p.parallel_bw, 1);
        assert_eq!(p.serial_bw, 2);
        assert_eq!(p.parallel_lat, 5);
        assert_eq!(c.onchip.bandwidth, 2, "on-chip links unaffected");
        assert_eq!(c.serial_params_scaled().bandwidth, 2);
    }

    #[test]
    fn full_mode_passthrough() {
        let c = SimConfig::default();
        let p = c.phy_params();
        assert_eq!(p.total_bw(), 6);
        assert_eq!(c.serial_params_scaled(), c.serial);
    }

    #[test]
    fn shard_threads_builder_and_resolution() {
        let c = SimConfig::default().with_shard_threads(4);
        assert_eq!(c.shard_threads, 4);
        assert_eq!(c.resolved_shard_threads(), 4);
        let auto = SimConfig::default().with_shard_threads(0);
        assert!(auto.resolved_shard_threads() >= 1, "auto resolves to cores");
    }

    #[test]
    fn canonical_key_separates_behavior_from_scheduling() {
        let a = SimConfig::default();
        // shard_threads and idle_skip never affect results, so neither is
        // part of the key.
        let b = SimConfig::default().with_shard_threads(8);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SimConfig::default().with_idle_skip(!a.idle_skip);
        assert_eq!(a.canonical_key(), c.canonical_key());
        assert_eq!(a.fingerprint(), c.fingerprint());
        // Every behavior knob perturbs the key.
        for other in [
            SimConfig::default().halved(),
            SimConfig::default().with_seed(7),
            SimConfig::default().with_ber(1e-9),
            SimConfig::default().with_retry(),
            SimConfig::default().without_bypass(),
            SimConfig::default().without_higher_radix_crossbar(),
        ] {
            assert_ne!(a.canonical_key(), other.canonical_key());
            assert_ne!(a.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn fault_builders() {
        assert!(!SimConfig::default().fault.armed());
        assert!(SimConfig::default().with_retry().fault.armed());
        let c = SimConfig::default().with_ber(1e-6);
        assert!(c.fault.armed());
        assert_eq!(c.fault.ber_serial, 1e-6);
        assert!(c.fault.ber_parallel < 1e-6);
    }
}

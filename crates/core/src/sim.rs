//! The simulation driver: warm-up, measurement, drain, deadlock watchdog.

use crate::network::{Collector, Network};
use crate::results::SimResults;
use chiplet_traffic::{PacketRequest, Workload};
use simkit::probe::{CycleStats, Phase, Probe};
use simkit::Cycle;

/// How long to run each phase of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Warm-up cycles (packets created here are excluded from statistics).
    pub warmup: Cycle,
    /// Measurement cycles.
    pub measure: Cycle,
    /// Maximum extra cycles spent draining in-flight packets after the
    /// measurement window (saturated runs won't drain; their backlog is
    /// reported instead).
    pub drain: Cycle,
    /// Cycles of total inactivity with live packets after which the run
    /// aborts (deadlock watchdog).
    pub watchdog: Cycle,
    /// Whether to keep polling the workload during the drain phase. Set
    /// for trace replays (the trace should finish); open-loop synthetic
    /// workloads must stop offering at the window edge or they would never
    /// drain.
    pub drain_offers: bool,
}

impl RunSpec {
    /// The paper's Table 2 schedule: 100 000 cycles with 10 000 warm-up.
    pub fn paper() -> Self {
        Self {
            warmup: 10_000,
            measure: 90_000,
            drain: 20_000,
            watchdog: 5_000,
            drain_offers: false,
        }
    }

    /// A shape-preserving quick schedule for benches and tests.
    pub fn quick() -> Self {
        Self {
            warmup: 1_000,
            measure: 6_000,
            drain: 6_000,
            watchdog: 5_000,
            drain_offers: false,
        }
    }

    /// An even shorter schedule for unit tests.
    pub fn smoke() -> Self {
        Self {
            warmup: 200,
            measure: 1_500,
            drain: 3_000,
            watchdog: 3_000,
            drain_offers: false,
        }
    }

    /// Enables workload polling during the drain phase (trace replays).
    pub fn with_drain_offers(mut self) -> Self {
        self.drain_offers = true;
        self
    }
}

/// Outcome of a completed run: the results, plus how the run ended.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Aggregated results over the measurement window.
    pub results: SimResults,
    /// Whether every packet was delivered by the end of the drain phase.
    pub drained: bool,
    /// Whether the inactivity watchdog aborted a fault-free run: live
    /// packets made no progress for [`RunSpec::watchdog`] consecutive
    /// cycles with no fault injection active. The routing algorithms in
    /// this workspace are deadlock-free, so a set flag indicates a
    /// configuration or simulator bug; results cover only the cycles
    /// before the abort.
    pub deadlocked: bool,
    /// Whether the watchdog aborted a run with active fault injection
    /// (nonzero BER or a fault script): traffic wedged on failed hardware
    /// — e.g. a homogeneous system that lost its only PHY family — rather
    /// than a routing bug. Mutually exclusive with
    /// [`RunOutcome::deadlocked`].
    pub fault_stalled: bool,
}

/// Runs `workload` on `net` according to `spec`.
///
/// The workload is polled once per cycle through warm-up and measurement;
/// during the drain phase it is polled only until it reports
/// [`Workload::done`] (open-loop synthetic workloads never do, so draining
/// stops offering new traffic at the window edge).
///
/// If the deadlock watchdog fires, the run stops early with
/// [`RunOutcome::deadlocked`] set instead of running out the clock.
pub fn run(net: &mut Network, workload: &mut dyn Workload, spec: RunSpec) -> RunOutcome {
    run_probed(net, workload, spec, &mut [])
}

/// Like [`run`], with observability probes attached.
///
/// Probes receive phase transitions, a per-cycle [`CycleStats`] snapshot,
/// every packet delivery and every flit hop. They are passive: for any
/// fixed network, workload and spec, the returned [`RunOutcome`] is
/// bit-identical whatever probes are attached.
///
/// Networks built with [`crate::SimConfig::shard_threads`] > 1 run their
/// cycle loop on a persistent worker pool (one thread per shard); the
/// workload and probes stay on the calling thread, and the outcome is
/// bit-identical to the serial engine's.
pub fn run_probed(
    net: &mut Network,
    workload: &mut dyn Workload,
    spec: RunSpec,
    probes: &mut [&mut dyn Probe],
) -> RunOutcome {
    dispatch(net, workload, spec, probes, None).expect("a run without a halt point completes")
}

/// Like [`run`], but halts at the start of cycle `halt_at` — before that
/// cycle's workload poll — returning `None` with the network parked at a
/// between-cycles boundary, ready for [`Network::checkpoint`].
///
/// The schedule is *resumable*: running a freshly restored network (one
/// whose [`Network::now`] already sits mid-schedule) with the same spec
/// continues exactly where the saved run halted — warm-up cycles already
/// behind the checkpoint are skipped, and the measurement window closes
/// at the same absolute cycle. A halted-then-resumed run is bit-identical
/// to an uninterrupted one (the golden checkpoint matrix pins this).
///
/// Returns `Some(outcome)` when the run ends before reaching `halt_at`
/// (deadlock or fault stall).
///
/// # Panics
///
/// Panics if `halt_at` is in the past or beyond the end of the
/// measurement window (`spec.warmup + spec.measure`) — the drain phase
/// has no well-defined resume point.
pub fn run_until(
    net: &mut Network,
    workload: &mut dyn Workload,
    spec: RunSpec,
    halt_at: Cycle,
) -> Option<RunOutcome> {
    run_until_probed(net, workload, spec, &mut [], halt_at)
}

/// [`run_until`] with observability probes attached.
pub fn run_until_probed(
    net: &mut Network,
    workload: &mut dyn Workload,
    spec: RunSpec,
    probes: &mut [&mut dyn Probe],
    halt_at: Cycle,
) -> Option<RunOutcome> {
    dispatch(net, workload, spec, probes, Some(halt_at))
}

fn dispatch(
    net: &mut Network,
    workload: &mut dyn Workload,
    spec: RunSpec,
    probes: &mut [&mut dyn Probe],
    halt_at: Option<Cycle>,
) -> Option<RunOutcome> {
    if net.num_shards() > 1 {
        crate::parallel::run_parallel(net, workload, spec, probes, halt_at)
    } else {
        drive(net, workload, spec, probes, halt_at)
    }
}

/// One cycle-loop endpoint the driver can run: the serial [`Network`]
/// itself, or the parallel pool leader ([`crate::parallel`]). Both expose
/// the same observable surface, so the warm-up/measure/drain schedule,
/// the watchdog and the probe protocol live in exactly one place —
/// [`drive`] — whatever the execution backend.
pub(crate) trait CycleDriver {
    fn now(&self) -> Cycle;
    fn offer(&mut self, req: PacketRequest);
    fn step_probed(&mut self, probes: &mut [&mut dyn Probe]);
    fn live_packets(&self) -> usize;
    fn queued_packets(&self) -> usize;
    fn collector(&self) -> &Collector;
    fn idle_cycles(&self) -> Cycle;
    fn faults_active(&self) -> bool;
    fn start_measurement(&mut self);
    /// Node count (for per-node result normalization).
    fn nodes(&self) -> u32;
    /// The earliest cycle ≥ `now` at which the driver can make progress:
    /// a pending delivery, ack or retry timeout on a link, a non-empty
    /// mailbox, an active router or NIC (both pin the bound to `now`), or
    /// the next unapplied fault-script event. [`Cycle::MAX`] when nothing
    /// is scheduled. The bound need not be tight, only never late.
    fn next_event(&mut self) -> Cycle;
    /// Advances the clock one cycle without simulating it. Only sound
    /// when [`Self::next_event`] is in the future: a step on a fully
    /// quiescent network is a total no-op except `now += 1`, so eliding
    /// it is bit-identical to running it.
    fn tick_idle(&mut self);
    /// Whether the configuration allows the idle-skip fast path.
    fn skip_enabled(&self) -> bool;
}

impl CycleDriver for Network {
    fn now(&self) -> Cycle {
        Network::now(self)
    }
    fn offer(&mut self, req: PacketRequest) {
        Network::offer(self, req);
    }
    fn step_probed(&mut self, probes: &mut [&mut dyn Probe]) {
        Network::step_probed(self, probes);
    }
    fn live_packets(&self) -> usize {
        Network::live_packets(self)
    }
    fn queued_packets(&self) -> usize {
        Network::queued_packets(self)
    }
    fn collector(&self) -> &Collector {
        Network::collector(self)
    }
    fn idle_cycles(&self) -> Cycle {
        Network::idle_cycles(self)
    }
    fn faults_active(&self) -> bool {
        Network::faults_active(self)
    }
    fn start_measurement(&mut self) {
        Network::start_measurement(self)
    }
    fn nodes(&self) -> u32 {
        self.topology().geometry().nodes()
    }
    fn next_event(&mut self) -> Cycle {
        Network::next_event(self)
    }
    fn tick_idle(&mut self) {
        Network::tick_idle(self)
    }
    fn skip_enabled(&self) -> bool {
        self.config().idle_skip
    }
}

/// The warm-up → measure → drain schedule over any [`CycleDriver`].
///
/// Phase boundaries are *absolute cycles* (`spec.warmup`,
/// `spec.warmup + spec.measure`), not counted loops, so a driver whose
/// clock already sits mid-schedule — a restored checkpoint — resumes in
/// the right phase and runs the same total cycles as an uninterrupted
/// run. On a fresh driver (`now == 0`) this is the classic schedule.
/// `halt_at` stops the run at the start of that cycle (before its
/// workload poll) and returns `None`; the driver is then parked at a
/// between-cycles boundary.
pub(crate) fn drive<D: CycleDriver>(
    net: &mut D,
    workload: &mut dyn Workload,
    spec: RunSpec,
    probes: &mut [&mut dyn Probe],
    halt_at: Option<Cycle>,
) -> Option<RunOutcome> {
    let initial = net.now();
    if let Some(h) = halt_at {
        assert!(
            h >= initial,
            "halt point {h} is in the past (now = {initial})"
        );
        assert!(
            h <= spec.warmup + spec.measure,
            "halt point {h} is beyond the measurement window"
        );
    }
    let mut buf = Vec::new();
    let mut deadlocked = false;
    let mut fault_stalled = false;
    // Idle-skip: when the driver is quiescent, eliding a cycle's step is
    // bit-identical to running it (the step would be a total no-op except
    // `now += 1`). `skip_until` caches the driver's next-event bound so
    // a long quiescent stretch computes it once, not every cycle; any
    // offer or real step invalidates the cache. The workload is still
    // polled every cycle (its RNG draws are per-cycle) and the halt/
    // watchdog checks below run unchanged, so phase boundaries, halt
    // points and watchdog aborts land on the identical cycles. Probes
    // keep the per-cycle step so `on_cycle` timing stays exact.
    let skip = net.skip_enabled() && probes.is_empty();
    let mut skip_until: Cycle = 0;
    // Ejection feedback for dependency-driven workloads: cumulative
    // per-tag delivered counts copied out of the collector once per cycle
    // (deliveries merge at the end of cycle T, the workload observes them
    // at the top of T+1, so a dependent phase starts strictly after its
    // predecessor's last ejection). Stays empty — one `is_empty` check —
    // for untagged workloads.
    let mut tag_scratch: Vec<u64> = Vec::new();

    macro_rules! phase_change {
        ($phase:expr) => {
            for p in probes.iter_mut() {
                p.on_phase_change(net.now(), $phase);
            }
        };
    }
    // One cycle: poll (optionally), step with probes, sample, watchdog.
    macro_rules! cycle {
        ($poll:expr) => {{
            if $poll {
                let by_tag = &net.collector().by_tag;
                if !by_tag.is_empty() {
                    tag_scratch.clear();
                    tag_scratch.extend(by_tag.iter().map(|s| s.delivered));
                }
                workload.observe(net.now(), &tag_scratch);
                workload.poll(net.now(), &mut buf);
                if !buf.is_empty() {
                    skip_until = 0;
                }
                for req in buf.drain(..) {
                    net.offer(req);
                }
            }
            if skip {
                if net.now() >= skip_until {
                    skip_until = net.next_event();
                }
                if net.now() < skip_until {
                    net.tick_idle();
                } else {
                    net.step_probed(probes);
                    skip_until = 0;
                }
            } else {
                net.step_probed(probes);
            }
            if !probes.is_empty() {
                let stats = CycleStats {
                    live_packets: net.live_packets() as u64,
                    queued_packets: net.queued_packets() as u64,
                    delivered_packets: net.collector().delivered_packets,
                    delivered_flits: net.collector().delivered_flits,
                };
                for p in probes.iter_mut() {
                    p.on_cycle(net.now() - 1, &stats);
                }
            }
            if net.live_packets() > 0 && net.idle_cycles() > spec.watchdog {
                // Stalling on failed hardware is expected degradation;
                // stalling on healthy hardware is a routing deadlock.
                if net.faults_active() {
                    fault_stalled = true;
                } else {
                    deadlocked = true;
                }
            }
            !(deadlocked || fault_stalled)
        }};
    }

    phase_change!(Phase::Warmup);
    if initial <= spec.warmup {
        while net.now() < spec.warmup {
            if halt_at == Some(net.now()) {
                return None;
            }
            if !cycle!(true) {
                break;
            }
        }
        if !(deadlocked || fault_stalled)
            && halt_at == Some(spec.warmup)
            && net.now() == spec.warmup
        {
            return None;
        }
        // A resume past the warm-up boundary must NOT re-arm measurement:
        // the restored `measure_from` already marks the original start.
        net.start_measurement();
    }
    phase_change!(Phase::Measure);
    let measure_start = if initial > spec.warmup {
        spec.warmup
    } else {
        net.now()
    };
    let window_end = spec.warmup + spec.measure;
    if !(deadlocked || fault_stalled) {
        while net.now() < window_end {
            if halt_at == Some(net.now()) {
                return None;
            }
            if !cycle!(true) {
                break;
            }
        }
        if !(deadlocked || fault_stalled) && halt_at == Some(window_end) && net.now() == window_end
        {
            return None;
        }
    }
    let cycles = net.now() - measure_start;
    // Backlog at the *end of the measurement window* is the saturation
    // signal: everything offered but not yet delivered.
    let backlog = net.live_packets() as u64;
    let mut drained = net.live_packets() == 0;
    phase_change!(Phase::Drain);
    if !(deadlocked || fault_stalled) {
        for _ in 0..spec.drain {
            if net.live_packets() == 0 && (!spec.drain_offers || workload.done()) {
                drained = true;
                break;
            }
            let poll = spec.drain_offers && !workload.done();
            if !cycle!(poll) {
                break;
            }
            drained = net.live_packets() == 0;
        }
    }
    if deadlocked || fault_stalled {
        drained = false;
    }
    let results = SimResults::from_collector(net.collector(), net.nodes(), cycles, backlog);
    Some(RunOutcome {
        results,
        drained,
        deadlocked,
        fault_stalled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use chiplet_topo::{build, routing, Geometry, SystemKind};
    use chiplet_traffic::{SyntheticWorkload, TrafficPattern};

    fn net(kind: SystemKind, geom: Geometry) -> Network {
        let topo = match kind {
            SystemKind::ParallelMesh => build::parallel_mesh(geom),
            SystemKind::SerialTorus => build::serial_torus(geom),
            SystemKind::HeteroPhyTorus => build::hetero_phy_torus(geom),
            SystemKind::SerialHypercube => build::serial_hypercube(geom),
            SystemKind::HeteroChannel => build::hetero_channel(geom),
            SystemKind::MultiPackageRow => build::multi_package(
                geom.chiplets_x(),
                1,
                geom.chiplets_y(),
                geom.chip_w(),
                geom.chip_h(),
            ),
        };
        Network::new(topo, routing::for_system(kind, 2), SimConfig::default())
    }

    #[test]
    fn light_uniform_traffic_runs_and_drains() {
        let geom = Geometry::new(2, 2, 2, 2);
        let mut n = net(SystemKind::ParallelMesh, geom);
        let nodes = (0..geom.nodes()).map(chiplet_topo::NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.05, 16, 7);
        let out = run(&mut n, &mut w, RunSpec::smoke());
        assert!(out.drained, "light load must drain");
        assert!(!out.deadlocked);
        assert!(out.results.packets > 10);
        assert!(!out.results.is_saturated());
        assert!(out.results.avg_latency > 10.0);
        assert!(out.results.throughput > 0.0);
        // Percentiles populated and ordered.
        assert!(out.results.p50_latency > 0.0);
        assert!(out.results.p99_latency >= out.results.p50_latency);
        assert!(out.results.p99_latency <= out.results.max_latency + 4.0);
    }

    #[test]
    fn hetero_phy_torus_beats_serial_torus_at_low_load() {
        // The paper's core zero-load claim (Fig. 11): serial-IF tori pay
        // the 20-cycle interface delay; hetero-PHY tori use the parallel
        // PHY for neighbor hops.
        let geom = Geometry::new(2, 2, 2, 2);
        let nodes: Vec<_> = (0..geom.nodes()).map(chiplet_topo::NodeId).collect();
        let lat = |kind| {
            let mut n = net(kind, geom);
            let mut w = SyntheticWorkload::new(nodes.clone(), TrafficPattern::Uniform, 0.02, 16, 7);
            run(&mut n, &mut w, RunSpec::smoke()).results.avg_latency
        };
        let serial = lat(SystemKind::SerialTorus);
        let hetero = lat(SystemKind::HeteroPhyTorus);
        assert!(
            hetero < serial,
            "hetero-PHY {hetero:.1} should beat uniform-serial {serial:.1}"
        );
    }

    #[test]
    fn saturated_run_reports_backlog_not_hang() {
        let geom = Geometry::new(2, 2, 2, 2);
        let mut n = net(SystemKind::ParallelMesh, geom);
        let nodes = (0..geom.nodes()).map(chiplet_topo::NodeId).collect();
        // 3 flits/cycle/node exceeds even the injection bandwidth (2).
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::BitComplement, 3.0, 16, 8);
        let out = run(&mut n, &mut w, RunSpec::smoke());
        // The backlog at the window edge flags saturation (whether or not
        // the drain phase later manages to empty the queues).
        assert!(out.results.is_saturated());
        assert!(out.results.backlog > out.results.packets);
        assert!(!out.deadlocked, "congestion is not deadlock");
    }

    #[test]
    fn hetero_channel_runs_under_uniform_load() {
        let geom = Geometry::new(4, 4, 3, 3);
        let mut n = net(SystemKind::HeteroChannel, geom);
        let nodes = (0..geom.nodes()).map(chiplet_topo::NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.1, 16, 9);
        let out = run(&mut n, &mut w, RunSpec::smoke());
        assert!(out.results.packets > 50);
        assert!(
            out.results.avg_serial_pj > 0.0,
            "distant pairs should use the hypercube"
        );
    }

    #[test]
    fn over_tight_watchdog_flags_deadlock_instead_of_panicking() {
        // A serial-torus hop keeps a flit in its 20-cycle delay line with
        // no other activity, so a 3-cycle watchdog must fire — exercising
        // the deadlocked outcome without needing a genuinely broken
        // network.
        let geom = Geometry::new(2, 2, 2, 2);
        let nodes: Vec<_> = (0..geom.nodes()).map(chiplet_topo::NodeId).collect();
        let mut spec = RunSpec::smoke();
        spec.watchdog = 3;
        let mut n = net(SystemKind::SerialTorus, geom);
        let mut w = SyntheticWorkload::new(nodes.clone(), TrafficPattern::Uniform, 0.02, 16, 7);
        let out = run(&mut n, &mut w, spec);
        assert!(out.deadlocked);
        assert!(!out.drained);
        // The same run under a sane watchdog completes.
        let mut n = net(SystemKind::SerialTorus, geom);
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.02, 16, 7);
        let out = run(&mut n, &mut w, RunSpec::smoke());
        assert!(!out.deadlocked);
        assert!(out.drained);
    }

    #[test]
    fn probes_receive_phases_cycles_and_deliveries() {
        #[derive(Default)]
        struct Recorder {
            phases: Vec<Phase>,
            cycles: u64,
            deliveries: u64,
            flit_hops: u64,
        }
        impl Probe for Recorder {
            fn on_phase_change(&mut self, _now: Cycle, phase: Phase) {
                self.phases.push(phase);
            }
            fn on_cycle(&mut self, _now: Cycle, _stats: &CycleStats) {
                self.cycles += 1;
            }
            fn on_packet_delivered(&mut self, _ev: &simkit::probe::DeliveryEvent) {
                self.deliveries += 1;
            }
            fn on_flit_hop(&mut self, _now: Cycle, _link: u32, _is_head: bool) {
                self.flit_hops += 1;
            }
        }
        let geom = Geometry::new(2, 2, 2, 2);
        let mut n = net(SystemKind::ParallelMesh, geom);
        let nodes = (0..geom.nodes()).map(chiplet_topo::NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.05, 16, 7);
        let mut rec = Recorder::default();
        let out = run_probed(&mut n, &mut w, RunSpec::smoke(), &mut [&mut rec]);
        assert_eq!(
            rec.phases,
            vec![Phase::Warmup, Phase::Measure, Phase::Drain]
        );
        assert!(rec.cycles >= RunSpec::smoke().warmup + RunSpec::smoke().measure);
        assert_eq!(rec.deliveries, n.collector().delivered_packets);
        assert_eq!(rec.flit_hops, n.link_flits().iter().sum::<u64>());
        assert!(out.drained);
    }
}

//! Heterogeneous die-to-die interfaces: the core library.
//!
//! This crate is the paper's contribution layer: it assembles the
//! substrates (`chiplet-noc` routers, `chiplet-topo` topologies and
//! routing, `chiplet-phy` interfaces, `chiplet-traffic` workloads) into
//! runnable multi-chiplet systems and drives the experiments of the
//! MICRO'23 paper *"Heterogeneous Die-to-Die Interfaces: Enabling More
//! Flexible Chiplet Interconnection Systems"*.
//!
//! # Quick start
//!
//! ```
//! use hetero_if::{NetworkKind, SchedulingProfile, SimConfig};
//! use hetero_if::sim::{run, RunSpec};
//! use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
//! use chiplet_topo::NodeId;
//!
//! // A 16-node hetero-PHY torus under light uniform traffic.
//! let geom = chiplet_topo::Geometry::new(2, 2, 2, 2);
//! let mut net = NetworkKind::HeteroPhyFull.build(
//!     geom, SimConfig::default(), SchedulingProfile::balanced());
//! let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
//! let mut workload =
//!     SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.05, 16, 1);
//! let outcome = run(&mut net, &mut workload, RunSpec::smoke());
//! assert!(outcome.results.packets > 0);
//! ```
//!
//! # Layout
//!
//! * [`config`] — Table 2 parameters, full/halved bandwidth modes;
//! * [`network`] — router/link/NIC assembly and the statistics collector;
//! * `engine` / `shard` / `parallel` (internal) — the staged per-cycle
//!   engine: credits → media → inject → route, with active-set
//!   scheduling that skips idle components, partitioned into
//!   chiplet-group shards that can run on a worker pool
//!   ([`SimConfig::shard_threads`]) with bit-identical results;
//! * [`scheduler`] — the §5.3 scheduling profiles;
//! * [`presets`] — the evaluated network kinds and system scales;
//! * [`sim`] — warm-up/measure/drain driver with a deadlock watchdog and
//!   probe attachment ([`sim::run_probed`]);
//! * [`sweep`] — injection-rate sweeps (latency–throughput curves),
//!   sequential or multi-threaded ([`sweep::latency_sweep_parallel`]);
//! * fault model — [`SimConfig::with_ber`] arms BER-driven corruption and
//!   the CRC/replay retry layer ([`chiplet_fault`] holds the config and
//!   scripts; [`Network::set_fault_script`] schedules hard failures);
//! * [`golden`] — the golden-trace matrix pinning the bit-identity
//!   contract that hot-path optimizations must preserve;
//! * [`cache`] — the content-addressed result cache (SHA-256 over the
//!   canonical point identity; in-memory LRU over an integrity-checked
//!   on-disk store) shared by `hetero-serve`, `hetero-sim --cache-dir`
//!   and the bench harness;
//! * [`checkpoint`] — snapshot-exact save/restore of a running network
//!   ([`Network::checkpoint`] / [`Network::restore`] /
//!   [`Network::fork_with`]), restorable at a different shard count;
//! * [`energy`] — the §8.3 energy model;
//! * [`economy`] — the §10 chiplet-reuse cost model;
//! * [`results`] — aggregated metrics.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod economy;
pub mod energy;
mod engine;
pub mod golden;
pub mod network;
mod parallel;
pub mod presets;
pub mod results;
pub mod scheduler;
mod shard;
pub mod sim;
pub mod sweep;

pub use cache::{CacheKey, CacheSource, CachedPoint, PointDesc, ResultCache};
pub use checkpoint::CHECKPOINT_VERSION;
pub use chiplet_fault::{FaultConfig, FaultEvent, FaultScript, FaultTarget, TimedFault};
pub use config::{BandwidthMode, SimConfig};
pub use energy::EnergyModel;
pub use network::Network;
pub use presets::NetworkKind;
pub use results::SimResults;
pub use scheduler::SchedulingProfile;

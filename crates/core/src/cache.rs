//! Content-addressed simulation-result cache.
//!
//! The engine is bit-deterministic: a [`SimConfig`] plus a network
//! preset, geometry, scheduling profile, workload and run schedule maps
//! to exactly one [`SimResults`], forever. That makes every simulation
//! point perfectly cacheable — the only hard part is the key. This module
//! derives it canonically: [`PointDesc::canonical_string`] concatenates
//! every behavior-affecting input (the config's own
//! [`SimConfig::canonical_key`] plus the point-level fields the config
//! does not carry) and [`PointDesc::key`] hashes that string with SHA-256
//! ([`simkit::hash`]). The old 64-bit FNV fingerprint stays for report
//! labels; a persistent store shared across processes needs the full 256
//! bits.
//!
//! The cache itself is two-level:
//!
//! * [`MemLru`] — an in-memory LRU for the hot working set;
//! * [`DiskStore`] — an on-disk content-addressed store
//!   (`<root>/<2-hex-prefix>/<64-hex>.hcr`), written atomically (temp
//!   file + rename) and read back through a CRC-32- and key-checked
//!   binary codec, so a torn write or bit rot surfaces as a rejected
//!   entry and a recompute, never as a wrong result.
//!
//! [`ResultCache`] stacks the two and is shared by every front end: the
//! `hetero-serve` job server, the `hetero-sim --cache-dir` CLI path and
//! the serve-throughput bench all go through [`ResultCache::get_or_compute`],
//! so a result computed by any of them is a hit for all of them.

use crate::config::SimConfig;
use crate::presets::NetworkKind;
use crate::results::SimResults;
use crate::scheduler::SchedulingProfile;
use crate::sim::{run, RunOutcome, RunSpec};
use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{PhaseGraph, SyntheticWorkload, TrafficPattern};
use simkit::codec::{crc32, ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::hash::{sha256, to_hex};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Version tag of the canonical key derivation *and* the on-disk entry
/// format. Bump when either changes: old entries then simply never match
/// (key change) or fail the magic check (format change) and are
/// recomputed.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Magic prefixing every on-disk entry (`HCR` + format version digit).
const MAGIC: &[u8; 4] = b"HCR1";

/// A 256-bit content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub [u8; 32]);

impl CacheKey {
    /// Lowercase hex rendering (the on-disk file stem).
    pub fn hex(&self) -> String {
        to_hex(&self.0)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Everything that identifies one simulation point. Two descriptors with
/// equal [`PointDesc::canonical_string`]s produce bit-identical results;
/// the cache stores and serves on exactly that contract.
#[derive(Debug, Clone)]
pub struct PointDesc {
    /// Network preset.
    pub kind: NetworkKind,
    /// System geometry.
    pub geom: Geometry,
    /// Simulator configuration (normalized through
    /// [`NetworkKind::effective_config`] before keying, so a preset that
    /// forces a bandwidth mode keys the same whichever way the caller
    /// spelled it).
    pub config: SimConfig,
    /// Scheduling profile.
    pub profile: SchedulingProfile,
    /// Synthetic traffic pattern.
    pub pattern: TrafficPattern,
    /// Offered injection rate, flits/cycle/node.
    pub rate: f64,
    /// Packet length in flits.
    pub packet_len: u16,
    /// Run schedule.
    pub spec: RunSpec,
    /// Free-form discriminator for anything the fields above do not
    /// carry: a fault-script text, a warm-start tag (`warm@<rate>`), an
    /// estimator backend. Empty for a plain cold engine run. Callers MUST
    /// fold in anything that changes results.
    pub variant: String,
}

impl PointDesc {
    /// A plain cold engine point (empty variant).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: NetworkKind,
        geom: Geometry,
        config: SimConfig,
        profile: SchedulingProfile,
        pattern: TrafficPattern,
        rate: f64,
        packet_len: u16,
        spec: RunSpec,
    ) -> Self {
        Self {
            kind,
            geom,
            config,
            profile,
            pattern,
            rate,
            packet_len,
            spec,
            variant: String::new(),
        }
    }

    /// Returns the descriptor with `variant` replaced.
    pub fn with_variant(mut self, variant: impl Into<String>) -> Self {
        self.variant = variant.into();
        self
    }

    /// Keys this point on a dependency-driven phase workload instead of
    /// the synthetic pattern: the variant becomes
    /// `workload@<fingerprint>`, folding the graph's canonical text —
    /// every phase, dependency, compute window and event — into the
    /// cache identity. A generated DNN graph and its captured-and-
    /// replayed trace share a fingerprint and therefore a key; a
    /// compute-scaled copy gets a new one automatically. The synthetic
    /// `pattern`/`rate` fields stay in the canonical string but are
    /// inert for such points — callers should pass fixed values.
    pub fn with_workload(self, graph: &PhaseGraph) -> Self {
        self.with_variant(format!("workload@{}", graph.fingerprint()))
    }

    /// The canonical, human-readable identity string this point is keyed
    /// on: a versioned, fixed-order concatenation of every
    /// behavior-affecting input. Floats are rendered with Rust's
    /// shortest round-trip `Display`, so distinct bit patterns render
    /// distinctly.
    pub fn canonical_string(&self) -> String {
        let config = self.kind.effective_config(self.config, self.profile);
        format!(
            "point-v{};kind={};geom={}x{}x{}x{};profile={};pattern={};rate={};plen={};\
             spec={}/{}/{}/{}/{};variant={};config[{}]",
            CACHE_FORMAT_VERSION,
            self.kind.label(),
            self.geom.chiplets_x(),
            self.geom.chiplets_y(),
            self.geom.chip_w(),
            self.geom.chip_h(),
            self.profile.name,
            self.pattern,
            self.rate,
            self.packet_len,
            self.spec.warmup,
            self.spec.measure,
            self.spec.drain,
            self.spec.watchdog,
            self.spec.drain_offers,
            self.variant,
            config.canonical_key(),
        )
    }

    /// The SHA-256 cache key of [`PointDesc::canonical_string`].
    pub fn key(&self) -> CacheKey {
        CacheKey(sha256(self.canonical_string().as_bytes()))
    }
}

/// One cached simulation outcome: the full [`RunOutcome`] surface plus
/// the rate it was measured at.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPoint {
    /// Offered injection rate.
    pub rate: f64,
    /// Whether the run drained completely.
    pub drained: bool,
    /// Watchdog abort on healthy hardware.
    pub deadlocked: bool,
    /// Watchdog abort on injected faults.
    pub fault_stalled: bool,
    /// The measured results.
    pub results: SimResults,
}

impl CachedPoint {
    /// Wraps a completed run outcome.
    pub fn from_outcome(rate: f64, out: &RunOutcome) -> Self {
        Self {
            rate,
            drained: out.drained,
            deadlocked: out.deadlocked,
            fault_stalled: out.fault_stalled,
            results: out.results.clone(),
        }
    }

    /// The equivalent run outcome.
    pub fn to_outcome(&self) -> RunOutcome {
        RunOutcome {
            results: self.results.clone(),
            drained: self.drained,
            deadlocked: self.deadlocked,
            fault_stalled: self.fault_stalled,
        }
    }

    /// The equivalent sweep point.
    pub fn to_sweep_point(&self) -> crate::sweep::SweepPoint {
        crate::sweep::SweepPoint {
            rate: self.rate,
            results: self.results.clone(),
            drained: self.drained,
        }
    }
}

impl SaveState for CachedPoint {
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_f64(self.rate);
        w.put_bool(self.drained);
        w.put_bool(self.deadlocked);
        w.put_bool(self.fault_stalled);
        self.results.save_state(w);
    }
}

impl LoadState for CachedPoint {
    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.rate = r.get_f64()?;
        self.drained = r.get_bool()?;
        self.deadlocked = r.get_bool()?;
        self.fault_stalled = r.get_bool()?;
        self.results.load_state(r)?;
        Ok(())
    }
}

/// Computes the descriptor's point with the engine: build the preset
/// network, run the synthetic workload, wrap the outcome. This is the
/// compute half that [`ResultCache::get_or_compute`] callers share —
/// callers with extra state to install (a fault script) supply their own
/// closure and a matching [`PointDesc::variant`].
pub fn engine_point(desc: &PointDesc) -> CachedPoint {
    let mut net = desc.kind.build(desc.geom, desc.config, desc.profile);
    let nodes: Vec<NodeId> = (0..desc.geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(
        nodes,
        desc.pattern,
        desc.rate,
        desc.packet_len,
        desc.config.seed,
    );
    let out = run(&mut net, &mut w, desc.spec);
    CachedPoint::from_outcome(desc.rate, &out)
}

/// Computes a phase-workload point: the same preset build as
/// [`engine_point`], but driving `graph` (reset to its pristine state
/// first, so a reused graph never leaks a previous run's release
/// cursor). Pair with [`PointDesc::with_workload`] so the graph's
/// fingerprint is part of the key.
pub fn phase_point(desc: &PointDesc, graph: &mut PhaseGraph) -> CachedPoint {
    let mut net = desc.kind.build(desc.geom, desc.config, desc.profile);
    graph.reset();
    let out = run(&mut net, graph, desc.spec);
    CachedPoint::from_outcome(desc.rate, &out)
}

/// Where a served point came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// In-memory LRU hit.
    Memory,
    /// On-disk store hit (promoted to memory).
    Disk,
    /// Freshly computed (and stored).
    Computed,
}

impl CacheSource {
    /// Whether the point was served without computing.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheSource::Computed)
    }
}

/// Cache traffic counters (monotonic; the serve layer mirrors them into
/// its metrics registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory LRU.
    pub mem_hits: u64,
    /// Lookups served from the on-disk store.
    pub disk_hits: u64,
    /// Lookups that found nothing and computed.
    pub misses: u64,
    /// Entries written to the on-disk store.
    pub stored: u64,
    /// On-disk entries rejected by the integrity checks (bad magic, CRC,
    /// key mismatch or truncation) and treated as misses.
    pub corrupt_rejected: u64,
    /// Disk writes that failed (the computed result is still returned
    /// and kept in memory).
    pub store_errors: u64,
}

impl CacheStats {
    /// Total hits, both levels.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// A fixed-capacity LRU keyed by [`CacheKey`].
///
/// Implementation note: recency is a monotone stamp per entry and
/// eviction scans for the minimum. Eviction is O(n) — but n is the
/// configured capacity (thousands), evictions only happen past it, and a
/// scan over a flat map is cheap next to the multi-millisecond
/// simulations being cached.
#[derive(Debug)]
pub struct MemLru {
    cap: usize,
    clock: u64,
    map: HashMap<CacheKey, (u64, CachedPoint)>,
}

impl MemLru {
    /// An LRU holding at most `cap` entries (`cap == 0` disables it).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            clock: 0,
            map: HashMap::new(),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the LRU is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedPoint> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(stamp, v)| {
            *stamp = clock;
            v.clone()
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when over capacity.
    pub fn put(&mut self, key: CacheKey, value: CachedPoint) {
        if self.cap == 0 {
            return;
        }
        self.clock += 1;
        self.map.insert(key, (self.clock, value));
        while self.map.len() > self.cap {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k)
                .expect("non-empty map has a minimum");
            self.map.remove(&oldest);
        }
    }
}

/// Why a disk-store read did not produce a point.
#[derive(Debug)]
pub enum StoreError {
    /// The entry exists but failed an integrity check; the detail names
    /// which one.
    Corrupt(&'static str),
    /// Filesystem error other than not-found.
    Io(io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Corrupt(why) => write!(f, "corrupt cache entry: {why}"),
            StoreError::Io(e) => write!(f, "cache store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The on-disk content-addressed store.
///
/// Layout: `<root>/<first two hex digits>/<64 hex digits>.hcr`, one file
/// per point, sharded over 256 subdirectories so no single directory
/// grows unboundedly. Entry format:
///
/// ```text
/// "HCR1" | crc32(rest) u32-LE | key (32 bytes) | CachedPoint codec bytes
/// ```
///
/// Writes go to a `.tmp` sibling first and are published with an atomic
/// rename, so readers never observe a torn entry; the CRC and embedded
/// key catch anything that slips through (bit rot, manual tampering, a
/// hash-prefix collision in the file name).
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Distinguishes concurrent writers' temp files.
    write_seq: std::sync::atomic::AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            write_seq: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry path for `key`.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.hcr"))
    }

    /// Reads the entry for `key`. `Ok(None)` is a clean miss; `Err` is a
    /// rejected (corrupt) or unreadable entry — callers treat it as a
    /// miss and recompute, and the recompute's write replaces the bad
    /// entry.
    pub fn load(&self, key: &CacheKey) -> Result<Option<CachedPoint>, StoreError> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        Self::decode(key, &bytes).map(Some)
    }

    fn decode(key: &CacheKey, bytes: &[u8]) -> Result<CachedPoint, StoreError> {
        if bytes.len() < 4 + 4 + 32 {
            return Err(StoreError::Corrupt("truncated header"));
        }
        if &bytes[..4] != MAGIC {
            return Err(StoreError::Corrupt("bad magic"));
        }
        let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
        let rest = &bytes[8..];
        if crc32(rest) != crc {
            return Err(StoreError::Corrupt("CRC mismatch"));
        }
        if rest[..32] != key.0 {
            return Err(StoreError::Corrupt("key mismatch"));
        }
        let mut point = CachedPoint {
            rate: 0.0,
            drained: false,
            deadlocked: false,
            fault_stalled: false,
            results: SimResults::zeroed(),
        };
        let mut r = ByteReader::new(&rest[32..]);
        point
            .load_state(&mut r)
            .map_err(|_| StoreError::Corrupt("payload decode failed"))?;
        if r.remaining() != 0 {
            return Err(StoreError::Corrupt("trailing bytes after payload"));
        }
        Ok(point)
    }

    /// Writes the entry for `key` atomically (temp file + rename).
    pub fn store(&self, key: &CacheKey, point: &CachedPoint) -> io::Result<()> {
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry paths have a shard directory");
        std::fs::create_dir_all(dir)?;
        let mut body = ByteWriter::new();
        point.save_state(&mut body);
        let body = body.into_bytes();
        let mut rest = Vec::with_capacity(32 + body.len());
        rest.extend_from_slice(&key.0);
        rest.extend_from_slice(&body);
        let mut blob = Vec::with_capacity(8 + rest.len());
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&crc32(&rest).to_le_bytes());
        blob.extend_from_slice(&rest);
        let seq = self
            .write_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(".{}.{}.{}.tmp", key.hex(), std::process::id(), seq));
        std::fs::write(&tmp, &blob)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// The two-level result cache: in-memory LRU over an optional on-disk
/// content-addressed store.
#[derive(Debug)]
pub struct ResultCache {
    mem: MemLru,
    disk: Option<DiskStore>,
    /// Traffic counters.
    pub stats: CacheStats,
}

/// Default in-memory LRU capacity.
pub const DEFAULT_MEM_CAP: usize = 4096;

impl ResultCache {
    /// A memory-only cache with the default capacity.
    pub fn in_memory() -> Self {
        Self::new(DEFAULT_MEM_CAP, None)
    }

    /// A cache over the on-disk store rooted at `dir`, with the default
    /// in-memory capacity.
    pub fn with_dir(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Self::new(DEFAULT_MEM_CAP, Some(DiskStore::open(dir)?)))
    }

    /// A cache with an explicit LRU capacity and optional disk store.
    pub fn new(mem_cap: usize, disk: Option<DiskStore>) -> Self {
        Self {
            mem: MemLru::new(mem_cap),
            disk,
            stats: CacheStats::default(),
        }
    }

    /// The underlying disk store, if any.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// Looks `key` up in both levels, counting the hit/miss and promoting
    /// disk hits into memory. Corrupt disk entries are rejected, counted
    /// and reported as a miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<(CachedPoint, CacheSource)> {
        if let Some(p) = self.mem.get(key) {
            self.stats.mem_hits += 1;
            return Some((p, CacheSource::Memory));
        }
        if let Some(disk) = &self.disk {
            match disk.load(key) {
                Ok(Some(p)) => {
                    self.stats.disk_hits += 1;
                    self.mem.put(*key, p.clone());
                    return Some((p, CacheSource::Disk));
                }
                Ok(None) => {}
                Err(_) => self.stats.corrupt_rejected += 1,
            }
        }
        None
    }

    /// Inserts `point` under `key` into both levels. Disk write failures
    /// are counted, not fatal — the result is still served and cached in
    /// memory.
    pub fn insert(&mut self, key: CacheKey, point: &CachedPoint) {
        self.mem.put(key, point.clone());
        if let Some(disk) = &self.disk {
            match disk.store(&key, point) {
                Ok(()) => self.stats.stored += 1,
                Err(_) => self.stats.store_errors += 1,
            }
        }
    }

    /// The cache front door: serve `key` from either level, or run
    /// `compute`, store the result and serve that. The returned
    /// [`CacheSource`] says which happened.
    pub fn get_or_compute(
        &mut self,
        key: CacheKey,
        compute: impl FnOnce() -> CachedPoint,
    ) -> (CachedPoint, CacheSource) {
        if let Some((p, src)) = self.lookup(&key) {
            return (p, src);
        }
        self.stats.misses += 1;
        let point = compute();
        self.insert(key, &point);
        (point, CacheSource::Computed)
    }

    /// [`ResultCache::get_or_compute`] for a plain cold engine point: the
    /// key is the descriptor's, the compute is [`engine_point`]. The
    /// `run_point`-level hook every front end shares.
    pub fn point(&mut self, desc: &PointDesc) -> (CachedPoint, CacheSource) {
        self.get_or_compute(desc.key(), || engine_point(desc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_desc(rate: f64) -> PointDesc {
        PointDesc::new(
            NetworkKind::UniformParallelMesh,
            Geometry::new(2, 2, 2, 2),
            SimConfig::default().with_shard_threads(1),
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            rate,
            16,
            RunSpec::smoke(),
        )
    }

    #[test]
    fn canonical_string_covers_every_point_field() {
        let base = small_desc(0.05);
        let base_key = base.key();
        let mut spec2 = RunSpec::smoke();
        spec2.measure += 1;
        let variants: Vec<PointDesc> = vec![
            PointDesc {
                kind: NetworkKind::UniformSerialTorus,
                ..base.clone()
            },
            PointDesc {
                geom: Geometry::new(2, 2, 2, 3),
                ..base.clone()
            },
            PointDesc {
                profile: SchedulingProfile::performance_first(),
                ..base.clone()
            },
            PointDesc {
                pattern: TrafficPattern::BitComplement,
                ..base.clone()
            },
            PointDesc {
                rate: 0.06,
                ..base.clone()
            },
            PointDesc {
                packet_len: 8,
                ..base.clone()
            },
            PointDesc {
                spec: spec2,
                ..base.clone()
            },
            base.clone().with_variant("warm@0.02"),
            PointDesc {
                config: SimConfig::default().with_seed(9),
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.key(), base_key, "{}", v.canonical_string());
        }
        // Scheduling-only knobs do not perturb the key.
        let sharded = PointDesc {
            config: base.config.with_shard_threads(4),
            ..base.clone()
        };
        assert_eq!(sharded.key(), base_key);
    }

    #[test]
    fn preset_normalization_keys_equal_configs_equal() {
        // HeteroPhyHalf forces halved mode; spelling it on the config
        // explicitly must key identically.
        let a = PointDesc {
            kind: NetworkKind::HeteroPhyHalf,
            ..small_desc(0.05)
        };
        let b = PointDesc {
            config: a.config.halved(),
            ..a.clone()
        };
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn workload_variant_keys_on_the_graph_fingerprint() {
        use chiplet_topo::NodeId;
        use chiplet_traffic::DnnSpec;
        let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
        let spec = DnnSpec::parse("ranks=4,layers=1").unwrap();
        let graph = PhaseGraph::dnn(&spec, &nodes);
        let base = small_desc(0.0);
        let keyed = base.clone().with_workload(&graph);
        assert_ne!(keyed.key(), base.key());
        // A regenerated identical graph keys the same; a compute-scaled
        // one keys differently.
        assert_eq!(
            base.clone()
                .with_workload(&PhaseGraph::dnn(&spec, &nodes))
                .key(),
            keyed.key()
        );
        assert_ne!(
            base.with_workload(&graph.with_compute_scale(2.0)).key(),
            keyed.key()
        );
    }

    #[test]
    fn phase_point_is_deterministic_and_cacheable() {
        use chiplet_topo::NodeId;
        use chiplet_traffic::DnnSpec;
        let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
        let spec = DnnSpec::parse("ranks=4,layers=1,grad=32").unwrap();
        let mut graph = PhaseGraph::dnn(&spec, &nodes);
        let desc = PointDesc {
            spec: RunSpec::smoke().with_drain_offers(),
            ..small_desc(0.0)
        }
        .with_workload(&graph);
        let a = phase_point(&desc, &mut graph);
        // Reuse the same graph object: phase_point resets it.
        let b = phase_point(&desc, &mut graph);
        assert_eq!(a, b, "phase points are bit-deterministic");
        assert!(a.drained);

        let mut cache = ResultCache::in_memory();
        let (first, src) = cache.get_or_compute(desc.key(), || phase_point(&desc, &mut graph));
        assert_eq!(src, CacheSource::Computed);
        let (second, src) = cache.get_or_compute(desc.key(), || unreachable!("cache hit"));
        assert_eq!(src, CacheSource::Memory);
        assert_eq!(first, second);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = MemLru::new(2);
        let p = engine_point(&small_desc(0.02));
        let k = |b: u8| CacheKey([b; 32]);
        lru.put(k(1), p.clone());
        lru.put(k(2), p.clone());
        assert!(lru.get(&k(1)).is_some()); // refresh 1 → 2 is now oldest
        lru.put(k(3), p.clone());
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&k(2)).is_none(), "LRU entry 2 evicted");
        assert!(lru.get(&k(1)).is_some());
        assert!(lru.get(&k(3)).is_some());
    }

    #[test]
    fn disk_round_trip_is_bit_exact_and_corruption_is_rejected() {
        let dir = std::env::temp_dir().join(format!("hcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).expect("store opens");
        let desc = small_desc(0.05);
        let key = desc.key();
        let point = engine_point(&desc);
        store.store(&key, &point).expect("store writes");
        let back = store.load(&key).expect("entry readable").expect("hit");
        assert_eq!(back, point, "bit-exact round trip");

        // Truncation → rejected.
        let path = store.entry_path(&key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(store.load(&key), Err(StoreError::Corrupt(_))));

        // Flipped payload bit → CRC rejects.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(store.load(&key), Err(StoreError::Corrupt(_))));

        // Intact bytes under the wrong name → key mismatch rejects.
        let other = small_desc(0.06).key();
        let other_path = store.entry_path(&other);
        std::fs::create_dir_all(other_path.parent().unwrap()).unwrap();
        std::fs::write(&other_path, &bytes).unwrap();
        assert!(matches!(store.load(&other), Err(StoreError::Corrupt(_))));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_or_compute_counts_and_serves_each_level() {
        let dir = std::env::temp_dir().join(format!("hcache-levels-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let desc = small_desc(0.05);

        let mut cache = ResultCache::with_dir(&dir).expect("cache opens");
        let (first, src) = cache.point(&desc);
        assert_eq!(src, CacheSource::Computed);
        assert_eq!(cache.stats.misses, 1);
        assert_eq!(cache.stats.stored, 1);
        let (second, src) = cache.point(&desc);
        assert_eq!(src, CacheSource::Memory);
        assert_eq!(second, first);

        // A fresh cache over the same directory — a "process restart" —
        // hits the disk level, bit-identically.
        let mut cache2 = ResultCache::with_dir(&dir).expect("cache reopens");
        let (third, src) = cache2.point(&desc);
        assert_eq!(src, CacheSource::Disk);
        assert_eq!(third, first);
        assert_eq!(cache2.stats.disk_hits, 1);
        // ...and the promoted entry now hits memory.
        let (_, src) = cache2.point(&desc);
        assert_eq!(src, CacheSource::Memory);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Scheduling profiles (§5.3): one bundle per paper policy.
//!
//! A profile combines the three scheduling levers the paper describes:
//! the hetero-PHY dispatch policy (adapter level), the Eq. 3 cost weights
//! (routing-reference level), and the Eq. 5 subnetwork-selection weight
//! (hetero-channel level, where the energy-efficient variant only takes
//! the serial hypercube when it saves energy rather than just hops).

use chiplet_phy::PhyPolicy;
use chiplet_topo::weight::CostWeights;

/// A named scheduling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulingProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Hetero-PHY dispatch policy.
    pub phy_policy: PhyPolicy,
    /// Eq. 3 weights (used by analysis and the weighted-length tools).
    pub cost_weights: CostWeights,
    /// Eq. 5 selection weight for hetero-channel routing: serial preferred
    /// when `#H_P > w · #H_S`.
    pub serial_selection_weight: f64,
}

impl SchedulingProfile {
    /// Performance-first (§5.3.1): every PHY at full capacity, energy
    /// ignored.
    pub fn performance_first() -> Self {
        Self {
            name: "performance-first",
            phy_policy: PhyPolicy::PerformanceFirst,
            cost_weights: CostWeights::performance_first(),
            serial_selection_weight: 1.0,
        }
    }

    /// Balanced (§5.3.1, the default in the evaluations): parallel PHY at
    /// higher priority, serial enabled under load.
    pub fn balanced() -> Self {
        Self {
            name: "balanced",
            phy_policy: PhyPolicy::Balanced { threshold: 8 },
            cost_weights: CostWeights::balanced(),
            serial_selection_weight: 1.0,
        }
    }

    /// Energy-efficient (§5.3.1): parallel PHY only; the hypercube
    /// subnetwork only when it beats the mesh on *total* energy. A
    /// chiplet-mesh hop costs one parallel crossing (1 pJ/bit) plus about
    /// one chiplet width of on-chip hops; a hypercube hop costs one serial
    /// crossing (2.4 pJ/bit) plus a short on-chip approach — the ratio of
    /// the totals is ≈ 1.5 for the paper's systems.
    pub fn energy_efficient() -> Self {
        Self {
            name: "energy-efficient",
            phy_policy: PhyPolicy::EnergyEfficient,
            cost_weights: CostWeights::energy_efficient(),
            serial_selection_weight: 1.5,
        }
    }

    /// Application-aware (§5.3.2): packet class/priority steer dispatch.
    pub fn application_aware() -> Self {
        Self {
            name: "application-aware",
            phy_policy: PhyPolicy::ApplicationAware { threshold: 8 },
            cost_weights: CostWeights::balanced(),
            serial_selection_weight: 1.0,
        }
    }
}

impl Default for SchedulingProfile {
    fn default() -> Self {
        Self::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct() {
        let p = SchedulingProfile::performance_first();
        let e = SchedulingProfile::energy_efficient();
        let b = SchedulingProfile::balanced();
        assert_ne!(p.phy_policy, e.phy_policy);
        assert_ne!(b.phy_policy, e.phy_policy);
        assert!(e.serial_selection_weight > b.serial_selection_weight);
        assert_eq!(
            p.cost_weights.gamma, 0.0,
            "performance-first ignores energy"
        );
        assert!(e.cost_weights.gamma > 0.0);
    }

    #[test]
    fn default_is_balanced() {
        assert_eq!(SchedulingProfile::default().name, "balanced");
    }
}

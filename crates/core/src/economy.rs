//! The economy of chiplet reuse (§10 "Flexibility in economy", Fig. 2,
//! §4.3 "Flexibility itself is the most significant cost saving").
//!
//! The paper's Motivation 1 is quantitative at heart: designing a chiplet
//! costs NRE (architecture, verification, masks) that is only recouped if
//! the same die ships in many systems, and a uniform interface prevents
//! that (parallel-only chiplets cannot build big/cheap-package systems;
//! serial-only chiplets waste power in small ones). This module provides a
//! first-order cost model in the spirit of the paper's reference [29]
//! (Feng & Ma, *Chiplet Actuary*): classic defect-density die cost, mask
//! NRE amortization, and per-package assembly cost, so the examples can put
//! numbers on "one hetero-IF chiplet serving three markets" vs "three
//! uniform-IF chiplet designs".

/// Process/economics constants for a first-order cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Wafer cost, $.
    pub wafer_cost: f64,
    /// Wafer diameter, mm.
    pub wafer_diameter_mm: f64,
    /// Defect density, defects/mm².
    pub defect_density: f64,
    /// Negative-binomial clustering parameter (≈ critical layers).
    pub clustering: f64,
    /// One-time design + mask NRE per distinct die design, $.
    pub design_nre: f64,
    /// Packaging/assembly cost per chiplet placed, $ (advanced packages
    /// cost more).
    pub assembly_per_chiplet: f64,
}

impl CostModel {
    /// A 12 nm-class logic node with organic-substrate assembly.
    pub fn n12() -> Self {
        Self {
            wafer_cost: 6_000.0,
            wafer_diameter_mm: 300.0,
            defect_density: 0.001, // per mm²
            clustering: 10.0,
            design_nre: 30.0e6,
            assembly_per_chiplet: 2.0,
        }
    }

    /// Gross dies per wafer for a square die of `area` mm² (Murphy-style
    /// edge-corrected approximation).
    ///
    /// # Panics
    ///
    /// Panics if `area <= 0`.
    pub fn dies_per_wafer(&self, area: f64) -> f64 {
        assert!(area > 0.0, "die area must be positive");
        let d = self.wafer_diameter_mm;
        let per = std::f64::consts::PI * (d / 2.0) * (d / 2.0) / area
            - std::f64::consts::PI * d / (2.0 * area).sqrt();
        per.max(1.0)
    }

    /// Yield for a die of `area` mm² (negative binomial model).
    pub fn yield_for(&self, area: f64) -> f64 {
        (1.0 + area * self.defect_density / self.clustering).powf(-self.clustering)
    }

    /// Manufactured (yielded) cost of one die of `area` mm², $.
    pub fn die_cost(&self, area: f64) -> f64 {
        self.wafer_cost / (self.dies_per_wafer(area) * self.yield_for(area))
    }

    /// Total cost of a program shipping `volumes[i]` packages of systems
    /// using `chiplets_per_system[i]` chiplets each, with `designs`
    /// distinct die designs of `die_area` mm². NRE is paid per design; die
    /// and assembly costs per unit.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn program_cost(
        &self,
        die_area: f64,
        designs: u32,
        volumes: &[u64],
        chiplets_per_system: &[u32],
    ) -> f64 {
        assert_eq!(
            volumes.len(),
            chiplets_per_system.len(),
            "one chiplet count per system volume"
        );
        let die = self.die_cost(die_area);
        let units: f64 = volumes
            .iter()
            .zip(chiplets_per_system)
            .map(|(&v, &c)| v as f64 * c as f64 * (die + self.assembly_per_chiplet))
            .sum();
        designs as f64 * self.design_nre + units
    }
}

/// Outcome of a reuse-vs-redesign comparison (the Fig. 2 scenario).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseComparison {
    /// Program cost with one hetero-IF chiplet reused everywhere, $.
    pub hetero_reuse_cost: f64,
    /// Program cost with one uniform-IF chiplet per scenario, $.
    pub uniform_redesign_cost: f64,
    /// `1 - hetero/uniform`.
    pub saving_fraction: f64,
}

/// Compares one hetero-IF chiplet (slightly larger die: both PHYs on the
/// rim) reused across all scenarios against per-scenario uniform-IF
/// designs, for the given per-scenario shipping volumes and chiplet counts.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn compare_reuse(
    model: &CostModel,
    base_die_area: f64,
    hetero_area_overhead: f64,
    volumes: &[u64],
    chiplets_per_system: &[u32],
) -> ReuseComparison {
    assert!(!volumes.is_empty(), "need at least one scenario");
    let hetero = model.program_cost(
        base_die_area * (1.0 + hetero_area_overhead),
        1,
        volumes,
        chiplets_per_system,
    );
    let uniform = model.program_cost(
        base_die_area,
        volumes.len() as u32,
        volumes,
        chiplets_per_system,
    );
    ReuseComparison {
        hetero_reuse_cost: hetero,
        uniform_redesign_cost: uniform,
        saving_fraction: 1.0 - hetero / uniform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_decreases_with_area() {
        let m = CostModel::n12();
        assert!(m.yield_for(50.0) > m.yield_for(200.0));
        assert!(m.yield_for(50.0) <= 1.0);
        assert!(m.yield_for(800.0) > 0.0);
    }

    #[test]
    fn die_cost_grows_superlinearly() {
        // The core chiplet economics: a 4x-larger die costs more than 4x.
        let m = CostModel::n12();
        let small = m.die_cost(100.0);
        let big = m.die_cost(400.0);
        assert!(big > 4.0 * small, "big {big:.2} vs small {small:.2}");
    }

    #[test]
    fn reuse_wins_at_moderate_volumes() {
        // Three scenarios (mobile / server / HPC) at typical chiplet-scale
        // volumes: paying one NRE beats three, despite ~15% die overhead
        // for the second interface.
        let m = CostModel::n12();
        let cmp = compare_reuse(&m, 100.0, 0.15, &[2_000_000, 300_000, 50_000], &[4, 16, 64]);
        assert!(cmp.saving_fraction > 0.0, "reuse should save: {cmp:?}");
        assert!(cmp.hetero_reuse_cost < cmp.uniform_redesign_cost);
    }

    #[test]
    fn at_extreme_volume_the_area_overhead_dominates() {
        // §9: hetero-IF is *not* applicable when area is extremely
        // constrained / volumes huge — the model reproduces the limit.
        let m = CostModel::n12();
        let cmp = compare_reuse(&m, 100.0, 0.15, &[500_000_000], &[4]);
        assert!(
            cmp.saving_fraction < 0.0,
            "one monster-volume system shouldn't pay for a second PHY: {cmp:?}"
        );
    }

    #[test]
    fn dies_per_wafer_sane() {
        let m = CostModel::n12();
        let n = m.dies_per_wafer(100.0);
        assert!((400.0..700.0).contains(&n), "dies/wafer {n}");
    }

    #[test]
    #[should_panic]
    fn mismatched_scenarios_panic() {
        let m = CostModel::n12();
        m.program_cost(100.0, 1, &[1], &[1, 2]);
    }
}
